// Package mscn implements the multi-set convolutional network baseline
// (paper §6.1.2, after Kipf et al.): a query-driven supervised estimator.
// Each predicate is featurized as (column one-hot, operator one-hot,
// normalized value) and passed through a shared set-module MLP whose outputs
// are average-pooled; a bitmap of materialized sample rows hit by the query
// feeds a second module; a final MLP regresses the normalized log
// selectivity through a sigmoid. Training minimizes MSE against the training
// workload's true selectivities.
package mscn

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"iam/internal/dataset"
	"iam/internal/nn"
	"iam/internal/query"
	"iam/internal/vecmath"
)

// Config controls architecture and training.
type Config struct {
	Hidden    int // set/bitmap module hidden width (default 64)
	PoolDim   int // pooled representation width (default 32)
	Samples   int // materialized bitmap sample size (default 500)
	Epochs    int // default 30
	BatchSize int // default 64
	LR        float64
	Seed      int64
}

func (c *Config) fillDefaults() {
	if c.Hidden <= 0 {
		c.Hidden = 64
	}
	if c.PoolDim <= 0 {
		c.PoolDim = 32
	}
	if c.Samples <= 0 {
		c.Samples = 500
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
}

// Estimator is the trained MSCN model.
type Estimator struct {
	table   *dataset.Table
	cfg     Config
	predNet *nn.MLP
	bitNet  *nn.MLP
	outNet  *nn.MLP

	predState *nn.MLPState
	predCap   int
	bitState  *nn.MLPState
	outState  *nn.MLPState

	samples  [][]float64 // materialized rows for bitmaps
	colLo    []float64
	colSpan  []float64
	floorLog float64 // log(1/|T|), the normalization floor
}

// predicate feature layout: [col onehot d][op onehot 3][value 1].
func (e *Estimator) predDim() int { return e.table.NumCols() + 4 }

// New trains MSCN on a labelled workload.
func New(t *dataset.Table, train *query.Workload, cfg Config) (*Estimator, error) {
	return NewContext(context.Background(), t, train, cfg)
}

// NewContext is New with cancellation: cancelling ctx stops training between
// mini-batches and returns the context's error.
func NewContext(ctx context.Context, t *dataset.Table, train *query.Workload, cfg Config) (*Estimator, error) {
	cfg.fillDefaults()
	if len(train.Queries) == 0 || len(train.Queries) != len(train.TrueSel) {
		return nil, fmt.Errorf("mscn: needs a labelled training workload")
	}
	e := &Estimator{table: t, cfg: cfg, floorLog: math.Log(1 / float64(t.NumRows()))}
	e.colLo = make([]float64, t.NumCols())
	e.colSpan = make([]float64, t.NumCols())
	for j, c := range t.Columns {
		if c.Kind == dataset.Categorical {
			e.colSpan[j] = math.Max(float64(c.Card-1), 1)
			continue
		}
		lo, hi, err := c.MinMax()
		if err != nil {
			return nil, fmt.Errorf("mscn: column %s: %w", c.Name, err)
		}
		e.colLo[j] = lo
		e.colSpan[j] = math.Max(hi-lo, 1e-9)
	}

	// Materialize the bitmap sample.
	rng := rand.New(rand.NewSource(cfg.Seed))
	ns := cfg.Samples
	if ns > t.NumRows() {
		ns = t.NumRows()
	}
	for _, ri := range rng.Perm(t.NumRows())[:ns] {
		row := make([]float64, t.NumCols())
		for j, c := range t.Columns {
			if c.Kind == dataset.Categorical {
				row[j] = float64(c.Ints[ri])
			} else {
				row[j] = c.Floats[ri]
			}
		}
		e.samples = append(e.samples, row)
	}

	var err error
	if e.predNet, err = nn.NewMLP([]int{e.predDim(), cfg.Hidden, cfg.PoolDim}, cfg.Seed+1); err != nil {
		return nil, err
	}
	if e.bitNet, err = nn.NewMLP([]int{len(e.samples), cfg.Hidden, cfg.PoolDim}, cfg.Seed+2); err != nil {
		return nil, err
	}
	if e.outNet, err = nn.NewMLP([]int{2 * cfg.PoolDim, cfg.Hidden, 1}, cfg.Seed+3); err != nil {
		return nil, err
	}
	maxPreds := cfg.BatchSize * 2 * t.NumCols()
	e.predState = e.predNet.NewState(maxPreds)
	e.predCap = maxPreds
	e.bitState = e.bitNet.NewState(cfg.BatchSize)
	e.outState = e.outNet.NewState(cfg.BatchSize)

	if err := e.train(ctx, train, rng); err != nil {
		return nil, err
	}
	return e, nil
}

// target maps a selectivity to the normalized-log regression target [0, 1].
func (e *Estimator) target(sel float64) float64 {
	l := math.Log(math.Max(sel, math.Exp(e.floorLog)))
	return 1 - l/e.floorLog
}

// invert maps a regression output back to a selectivity.
func (e *Estimator) invert(y float64) float64 {
	return math.Exp((1 - vecmath.Clamp(y, 0, 1)) * e.floorLog)
}

// featurize builds the per-predicate feature rows of one query.
func (e *Estimator) featurize(q *query.Query) [][]float64 {
	var rows [][]float64
	d := e.table.NumCols()
	add := func(col int, op int, v float64) {
		f := make([]float64, e.predDim())
		f[col] = 1
		f[d+op] = 1
		f[d+3] = vecmath.Clamp((v-e.colLo[col])/e.colSpan[col], 0, 1)
		rows = append(rows, f)
	}
	for j, r := range q.Ranges {
		if r == nil {
			continue
		}
		//lint:ignore floateq point predicate detection on exact user-supplied bounds
		if r.Lo == r.Hi && r.LoInc && r.HiInc {
			add(j, 0, r.Lo) // =
			continue
		}
		if !math.IsInf(r.Lo, -1) {
			add(j, 2, r.Lo) // ≥
		}
		if !math.IsInf(r.Hi, 1) {
			add(j, 1, r.Hi) // ≤
		}
	}
	if len(rows) == 0 {
		f := make([]float64, e.predDim())
		rows = append(rows, f) // "no predicate" token
	}
	return rows
}

// bitmap evaluates the query against the materialized sample.
func (e *Estimator) bitmap(q *query.Query) []float64 {
	bits := make([]float64, len(e.samples))
	for i, row := range e.samples {
		ok := true
		for j, r := range q.Ranges {
			if r == nil {
				continue
			}
			if !r.Contains(row[j]) {
				ok = false
				break
			}
		}
		if ok {
			bits[i] = 1
		}
	}
	return bits
}

// train runs mini-batch Adam on MSE of the sigmoid output.
func (e *Estimator) train(ctx context.Context, train *query.Workload, rng *rand.Rand) error {
	cfg := e.cfg
	n := len(train.Queries)
	idx := rng.Perm(n)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			batch := idx[start:end]
			e.trainBatch(train, batch)
		}
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	return nil
}

func (e *Estimator) trainBatch(train *query.Workload, batch []int) {
	b := len(batch)
	poolDim := e.cfg.PoolDim

	// Gather predicate rows for the whole batch.
	var predRows [][]float64
	counts := make([]int, b)
	for bi, qi := range batch {
		rows := e.featurize(train.Queries[qi])
		counts[bi] = len(rows)
		predRows = append(predRows, rows...)
	}
	predIn := vecmath.NewMatrix(len(predRows), e.predDim())
	for i, r := range predRows {
		copy(predIn.Row(i), r)
	}
	e.ensurePredState(predIn.Rows)
	e.predNet.Forward(e.predState, predIn)
	predOut := e.predNet.Output(e.predState)

	bitIn := vecmath.NewMatrix(b, len(e.samples))
	for bi, qi := range batch {
		copy(bitIn.Row(bi), e.bitmap(train.Queries[qi]))
	}
	e.bitNet.Forward(e.bitState, bitIn)
	bitOut := e.bitNet.Output(e.bitState)

	// Concatenate pooled predicate vectors with bitmap vectors.
	outIn := vecmath.NewMatrix(b, 2*poolDim)
	off := 0
	for bi := 0; bi < b; bi++ {
		dst := outIn.Row(bi)
		for k := 0; k < counts[bi]; k++ {
			vecmath.Axpy(1/float64(counts[bi]), predOut.Row(off+k), dst[:poolDim])
		}
		copy(dst[poolDim:], bitOut.Row(bi))
		off += counts[bi]
	}
	e.outNet.Forward(e.outState, outIn)
	out := e.outNet.Output(e.outState)

	// MSE on sigmoid(out) vs normalized log target.
	dOut := vecmath.NewMatrix(b, 1)
	for bi, qi := range batch {
		s := sigmoid(out.Row(bi)[0])
		y := e.target(train.TrueSel[qi])
		dOut.Row(bi)[0] = 2 * (s - y) * s * (1 - s)
	}

	dOutIn := vecmath.NewMatrix(b, 2*poolDim)
	e.outNet.ZeroGrad()
	e.outNet.Backward(e.outState, dOut, dOutIn)

	// Split the concatenated gradient back to the two modules.
	dBit := vecmath.NewMatrix(b, poolDim)
	dPred := vecmath.NewMatrix(predIn.Rows, poolDim)
	off = 0
	for bi := 0; bi < b; bi++ {
		src := dOutIn.Row(bi)
		copy(dBit.Row(bi), src[poolDim:])
		for k := 0; k < counts[bi]; k++ {
			vecmath.Axpy(1/float64(counts[bi]), src[:poolDim], dPred.Row(off+k))
		}
		off += counts[bi]
	}
	e.bitNet.ZeroGrad()
	e.bitNet.Backward(e.bitState, dBit, nil)
	e.predNet.ZeroGrad()
	e.predNet.Backward(e.predState, dPred, nil)

	scale := 1 / float64(b)
	e.outNet.AdamStep(e.cfg.LR, scale)
	e.bitNet.AdamStep(e.cfg.LR, scale)
	e.predNet.AdamStep(e.cfg.LR, scale)
}

// ensurePredState grows the set-module activation buffers when a batch has
// more predicates than any before it.
func (e *Estimator) ensurePredState(n int) {
	if n > e.predCap {
		e.predState = e.predNet.NewState(n)
		e.predCap = n
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Name implements estimator.Estimator.
func (e *Estimator) Name() string { return "MSCN" }

// SizeBytes reports network plus sample storage (the bitmap sample is part
// of the model, as in the paper's Table 6 where MSCN is ~2.5 MB).
func (e *Estimator) SizeBytes() int {
	s := e.predNet.SizeBytes() + e.bitNet.SizeBytes() + e.outNet.SizeBytes()
	s += 8 * len(e.samples) * e.table.NumCols()
	return s
}

// Estimate implements estimator.Estimator.
func (e *Estimator) Estimate(q *query.Query) (float64, error) {
	res, err := e.EstimateBatch([]*query.Query{q})
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// EstimateBatch runs the forward pass for a batch of queries.
func (e *Estimator) EstimateBatch(qs []*query.Query) ([]float64, error) {
	out := make([]float64, len(qs))
	poolDim := e.cfg.PoolDim
	for start := 0; start < len(qs); start += e.cfg.BatchSize {
		end := start + e.cfg.BatchSize
		if end > len(qs) {
			end = len(qs)
		}
		chunk := qs[start:end]
		b := len(chunk)
		var predRows [][]float64
		counts := make([]int, b)
		for bi, q := range chunk {
			if q.Table != e.table {
				return nil, fmt.Errorf("mscn: query targets table %q", q.Table.Name)
			}
			rows := e.featurize(q)
			counts[bi] = len(rows)
			predRows = append(predRows, rows...)
		}
		predIn := vecmath.NewMatrix(len(predRows), e.predDim())
		for i, r := range predRows {
			copy(predIn.Row(i), r)
		}
		e.ensurePredState(predIn.Rows)
		e.predNet.Forward(e.predState, predIn)
		predOut := e.predNet.Output(e.predState)

		bitIn := vecmath.NewMatrix(b, len(e.samples))
		for bi, q := range chunk {
			copy(bitIn.Row(bi), e.bitmap(q))
		}
		e.bitNet.Forward(e.bitState, bitIn)
		bitOut := e.bitNet.Output(e.bitState)

		outIn := vecmath.NewMatrix(b, 2*poolDim)
		off := 0
		for bi := 0; bi < b; bi++ {
			dst := outIn.Row(bi)
			for k := 0; k < counts[bi]; k++ {
				vecmath.Axpy(1/float64(counts[bi]), predOut.Row(off+k), dst[:poolDim])
			}
			copy(dst[poolDim:], bitOut.Row(bi))
			off += counts[bi]
		}
		e.outNet.Forward(e.outState, outIn)
		res := e.outNet.Output(e.outState)
		for bi := 0; bi < b; bi++ {
			out[start+bi] = e.invert(sigmoid(res.Row(bi)[0]))
		}
	}
	return out, nil
}
