package kde

import (
	"testing"

	"iam/internal/dataset"
	"iam/internal/estimator"
	"iam/internal/query"
	"iam/internal/testutil"
)

func TestKDEOnSmoothData(t *testing.T) {
	tb := dataset.SynthTWI(8000, 1)
	e, err := New(tb, Config{SampleSize: 1500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 80, Seed: 3})
	ev, err := estimator.Evaluate(e, w, tb.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	// KDE suits smooth continuous spatial data (the paper's TWI finding).
	if ev.Summary.Median > 2 {
		t.Fatalf("median q-error %v: %v", ev.Summary.Median, ev.Summary)
	}
}

func TestBandwidthTuningDoesNotHurt(t *testing.T) {
	tb := dataset.SynthHIGGS(4000, 4)
	e, err := New(tb, Config{SampleSize: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	train := testutil.Workload(t, tb, query.GenConfig{NumQueries: 60, Seed: 6})
	test := testutil.Workload(t, tb, query.GenConfig{NumQueries: 60, Seed: 7})
	before, err := estimator.Evaluate(e, test, tb.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	e.TuneBandwidth(train, tb.NumRows())
	after, err := estimator.Evaluate(e, test, tb.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	if after.Summary.Median > before.Summary.Median*1.5+0.5 {
		t.Fatalf("tuning made KDE much worse: %v -> %v", before.Summary.Median, after.Summary.Median)
	}
}

func TestKDEUnconstrainedIsOne(t *testing.T) {
	tb := dataset.SynthTWI(1000, 8)
	e, err := New(tb, Config{SampleSize: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Estimate(query.NewQuery(tb))
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.999 {
		t.Fatalf("unconstrained estimate %v, want ≈1", got)
	}
}

func TestKDESizeAndErrors(t *testing.T) {
	tb := dataset.SynthTWI(1000, 10)
	e, err := New(tb, Config{SampleSize: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if e.SizeBytes() != 8*(100*2+2) {
		t.Fatalf("size = %d", e.SizeBytes())
	}
	other := dataset.SynthTWI(100, 12)
	if _, err := e.Estimate(query.NewQuery(other)); err == nil {
		t.Fatal("expected wrong-table error")
	}
}
