// Package kde implements the Gaussian kernel density estimator baseline
// (paper §6.1.2 "KDE", after Heimel/Kiefer et al.): product Gaussian kernels
// centred on a uniform sample, bandwidths from Scott's rule, with optional
// multiplicative bandwidth tuning on a training-query workload (the "queries
// as feedback" optimization the paper mentions). Range selectivities are the
// mean over kernels of the product of per-dimension Gaussian CDF masses.
package kde

import (
	"fmt"
	"math"
	"math/rand"

	"iam/internal/dataset"
	"iam/internal/query"
	"iam/internal/vecmath"
)

// Config controls the estimator.
type Config struct {
	// SampleSize is the number of kernel centres (default 1000).
	SampleSize int
	Seed       int64
}

// Estimator is a product-kernel Gaussian KDE.
type Estimator struct {
	table     *dataset.Table
	points    [][]float64 // kernel centres
	bandwidth []float64   // per dimension
}

// New draws the kernel sample and sets Scott's-rule bandwidths
// h_j = σ_j · n^(−1/(d+4)).
func New(t *dataset.Table, cfg Config) (*Estimator, error) {
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("kde: empty table")
	}
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = 1000
	}
	if cfg.SampleSize > t.NumRows() {
		cfg.SampleSize = t.NumRows()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := t.NumCols()
	e := &Estimator{table: t, bandwidth: make([]float64, d)}
	idx := rng.Perm(t.NumRows())[:cfg.SampleSize]
	for _, ri := range idx {
		row := make([]float64, d)
		for j, c := range t.Columns {
			if c.Kind == dataset.Categorical {
				row[j] = float64(c.Ints[ri])
			} else {
				row[j] = c.Floats[ri]
			}
		}
		e.points = append(e.points, row)
	}
	nf := float64(len(e.points))
	exp := math.Pow(nf, -1/float64(d+4))
	for j := 0; j < d; j++ {
		col := make([]float64, len(e.points))
		for i, p := range e.points {
			col[i] = p[j]
		}
		sigma := math.Sqrt(vecmath.Variance(col))
		if sigma <= 0 {
			sigma = 1e-6
		}
		e.bandwidth[j] = sigma * exp
	}
	return e, nil
}

// TuneBandwidth grid-searches a global multiplicative bandwidth factor that
// minimises squared log-error on a training workload — the query-feedback
// optimization. It mutates the estimator's bandwidths.
func (e *Estimator) TuneBandwidth(w *query.Workload, rows int) {
	if len(w.Queries) == 0 {
		return
	}
	base := append([]float64(nil), e.bandwidth...)
	floor := 1.0 / float64(rows)
	best, bestErr := 1.0, math.Inf(1)
	for _, f := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		for j := range e.bandwidth {
			e.bandwidth[j] = base[j] * f
		}
		var errSum float64
		for i, q := range w.Queries {
			est, _ := e.Estimate(q)
			le := math.Log(math.Max(est, floor)) - math.Log(math.Max(w.TrueSel[i], floor))
			errSum += le * le
		}
		if errSum < bestErr {
			best, bestErr = f, errSum
		}
	}
	for j := range e.bandwidth {
		e.bandwidth[j] = base[j] * best
	}
}

// Name implements estimator.Estimator.
func (e *Estimator) Name() string { return "KDE" }

// SizeBytes reports the kernel sample plus bandwidth storage.
func (e *Estimator) SizeBytes() int {
	return 8 * (len(e.points)*e.table.NumCols() + len(e.bandwidth))
}

// Estimate integrates the KDE over the query box.
func (e *Estimator) Estimate(q *query.Query) (float64, error) {
	if q.Table != e.table {
		return 0, fmt.Errorf("kde: query targets table %q", q.Table.Name)
	}
	var total float64
	for _, p := range e.points {
		contrib := 1.0
		for j, r := range q.Ranges {
			if r == nil {
				continue
			}
			h := e.bandwidth[j]
			mass := vecmath.NormalCDF(r.Hi, p[j], h) - vecmath.NormalCDF(r.Lo, p[j], h)
			if mass <= 0 {
				contrib = 0
				break
			}
			contrib *= mass
		}
		total += contrib
	}
	return vecmath.Clamp(total/float64(len(e.points)), 0, 1), nil
}
