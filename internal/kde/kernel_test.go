package kde

import (
	"math"
	"testing"

	"iam/internal/dataset"
	"iam/internal/query"
	"iam/internal/vecmath"
)

// TestSingleKernelIntegral: with one kernel centre, the estimate over a box
// equals the product of per-dimension Gaussian masses analytically.
func TestSingleKernelIntegral(t *testing.T) {
	tb := &dataset.Table{Name: "one", Columns: []*dataset.Column{
		{Name: "u", Kind: dataset.Continuous, Floats: []float64{2.0}},
		{Name: "v", Kind: dataset.Continuous, Floats: []float64{-1.0}},
	}}
	e, err := New(tb, Config{SampleSize: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidths are degenerate for a single point; set them directly.
	e.bandwidth = []float64{0.5, 2}
	q := query.NewQuery(tb)
	if err := q.AddPredicate(query.Predicate{Col: "u", Op: query.Le, Value: 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := q.AddPredicate(query.Predicate{Col: "v", Op: query.Ge, Value: 0}); err != nil {
		t.Fatal(err)
	}
	got, err := e.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	want := vecmath.NormalCDF(2.5, 2.0, 0.5) * (1 - vecmath.NormalCDF(0, -1.0, 2))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("kernel integral %v vs analytic %v", got, want)
	}
}

// TestKDEConsistency: with many samples and small bandwidth, the estimate
// approaches the empirical selectivity on smooth data.
func TestKDEConsistency(t *testing.T) {
	tb := dataset.SynthTWI(12000, 2)
	e, err := New(tb, Config{SampleSize: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := query.NewQuery(tb)
	if err := q.AddPredicate(query.Predicate{Col: "latitude", Op: query.Le, Value: 38}); err != nil {
		t.Fatal(err)
	}
	got, err := e.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	want := query.Exec(q)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("KDE %v vs truth %v", got, want)
	}
}
