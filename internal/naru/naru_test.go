package naru

import (
	"testing"

	"iam/internal/dataset"
	"iam/internal/estimator"
	"iam/internal/query"
	"iam/internal/testutil"
)

func fastCfg() Config {
	return Config{
		MaxSubColumn: 128,
		Hidden:       []int{32, 32},
		EmbedDim:     16,
		Epochs:       6,
		BatchSize:    128,
		NumSamples:   400,
		Seed:         1,
	}
}

func TestNeurocardFactorsLargeDomains(t *testing.T) {
	tb := dataset.SynthTWI(3000, 2)
	m, err := Train(tb, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	cards := m.ARColumns()
	// Each continuous column has ~3000 distinct values → factored into
	// multiple subcolumns of ≤ 128.
	if len(cards) < 4 {
		t.Fatalf("AR columns = %v, expected factored subcolumns", cards)
	}
	for _, c := range cards {
		if c > 128 {
			t.Fatalf("subcolumn card %d exceeds cap", c)
		}
	}
}

func TestNeurocardAccuracyWISDM(t *testing.T) {
	tb := dataset.SynthWISDM(4000, 3)
	cfg := fastCfg()
	cfg.Epochs = 8
	m, err := Train(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 80, Seed: 4})
	ev, err := estimator.Evaluate(m, w, tb.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Summary.Median > 3.5 {
		t.Fatalf("median q-error %v: %v", ev.Summary.Median, ev.Summary)
	}
}

func TestColumnOrderAblation(t *testing.T) {
	tb := dataset.SynthWISDM(2500, 5)
	cfg := fastCfg()
	cfg.ColumnOrder = []int{4, 3, 2, 1, 0} // reversed
	m, err := Train(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 40, Seed: 6})
	ev, err := estimator.Evaluate(m, w, tb.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	// Reversed order must still produce a working estimator.
	if ev.Summary.Median > 5 {
		t.Fatalf("reversed-order median q-error %v", ev.Summary.Median)
	}
}

func TestColumnOrderValidation(t *testing.T) {
	tb := dataset.SynthTWI(500, 7)
	cfg := fastCfg()
	cfg.ColumnOrder = []int{0} // wrong length
	if _, err := Train(tb, cfg); err == nil {
		t.Fatal("expected column-order length error")
	}
}

func TestEmptyRangeIsZero(t *testing.T) {
	tb := dataset.SynthTWI(2000, 8)
	m, err := Train(tb, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	q := query.NewQuery(tb)
	if err := q.AddPredicate(query.Predicate{Col: "latitude", Op: query.Ge, Value: 1000}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-6 {
		t.Fatalf("impossible range estimate %v", got)
	}
}

func TestSizeBytesPositive(t *testing.T) {
	tb := dataset.SynthTWI(1500, 9)
	m, err := Train(tb, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if m.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}

func TestWrongTableRejected(t *testing.T) {
	tb := dataset.SynthTWI(500, 10)
	m, err := Train(tb, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	other := dataset.SynthTWI(100, 11)
	if _, err := m.Estimate(query.NewQuery(other)); err == nil {
		t.Fatal("expected wrong-table error")
	}
}
