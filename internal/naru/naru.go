// Package naru implements the Naru/NeuroCard baseline (paper §6.1.2): a
// ResMADE autoregressive model over ordinally encoded columns, with
// NeuroCard's column factorization for large domains, wildcard-skipping
// training, and vanilla progressive sampling for range queries. It is
// exactly IAM minus the GMM domain reduction — continuous attributes keep
// their full ordinal domains, which is the weakness IAM targets.
package naru

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"iam/internal/ar"
	"iam/internal/dataset"
	"iam/internal/nn"
	"iam/internal/query"
)

// Config controls training.
type Config struct {
	// MaxSubColumn caps per-column domains; larger ordinal domains are
	// factored into subcolumns (NeuroCard §4.2; default 256 at our scale,
	// the paper uses 2^11 at millions of distinct values).
	MaxSubColumn int
	Hidden       []int
	EmbedDim     int
	Epochs       int
	BatchSize    int
	LR           float64
	NumSamples   int // progressive-sampling paths per query
	Seed         int64
	// ColumnOrder optionally permutes the autoregressive column order
	// (ablation; paper §4.3 reports left-to-right natural order works
	// well). Identity when nil.
	ColumnOrder []int
	// OnEpoch mirrors core.Config.OnEpoch (AR loss only).
	OnEpoch func(epoch int, nll float64) bool
}

func (c *Config) fillDefaults() {
	if c.MaxSubColumn <= 1 {
		c.MaxSubColumn = 256
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{128, 64, 64, 128}
	}
	if c.EmbedDim <= 0 {
		c.EmbedDim = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	// Epochs < 0 means "no data training" (used by UAE-Q, which learns the
	// AR model from queries only).
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.LR <= 0 {
		c.LR = 2e-3
	}
	if c.NumSamples <= 0 {
		c.NumSamples = 800
	}
}

// colInfo maps one original column onto AR columns.
type colInfo struct {
	arFirst  int
	arCount  int
	enc      *dataset.ColumnEncoder
	factored bool
	factor   dataset.FactorSpec
}

// Model is a trained Naru/NeuroCard estimator.
type Model struct {
	table *dataset.Table
	cfg   Config
	order []int // order[k] = original column index at AR position k group
	cols  []colInfo
	arm   *ar.Model

	Losses []float64

	// mu guards the shared inference state: Estimate may be called from
	// multiple goroutines.
	mu      sync.Mutex
	sess    *nn.Session // iam:guardedby mu
	sessCap int         // iam:guardedby mu
	rng     *rand.Rand  // iam:guardedby mu
}

// Train fits the model on t.
func Train(t *dataset.Table, cfg Config) (*Model, error) {
	return TrainContext(context.Background(), t, cfg)
}

// TrainContext is Train with cancellation: cancelling ctx stops the training
// loop between mini-batches and returns the context's error.
func TrainContext(ctx context.Context, t *dataset.Table, cfg Config) (*Model, error) {
	cfg.fillDefaults()
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("naru: empty table")
	}
	order := cfg.ColumnOrder
	if order == nil {
		order = make([]int, t.NumCols())
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != t.NumCols() {
		return nil, fmt.Errorf("naru: column order has %d entries for %d columns", len(order), t.NumCols())
	}

	m := &Model{table: t, cfg: cfg, order: order, cols: make([]colInfo, t.NumCols())}
	var cards []int
	for _, ci := range order {
		c := t.Columns[ci]
		info := colInfo{arFirst: len(cards), enc: dataset.BuildEncoder(c)}
		if info.enc.Card > cfg.MaxSubColumn {
			info.factored = true
			spec, err := dataset.NewFactorSpec(info.enc.Card, cfg.MaxSubColumn)
			if err != nil {
				return nil, err
			}
			info.factor = spec
			info.arCount = len(info.factor.Bases)
			cards = append(cards, info.factor.Bases...)
		} else {
			info.arCount = 1
			cards = append(cards, info.enc.Card)
		}
		m.cols[ci] = info
	}
	if len(cards) < 2 {
		return nil, fmt.Errorf("naru: need ≥ 2 AR columns")
	}

	arm, err := ar.New(cards, cfg.Hidden, cfg.EmbedDim, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	m.arm = arm

	// Encode all rows and train (skipped entirely when Epochs < 0, the
	// UAE-Q query-only mode).
	if cfg.Epochs > 0 {
		n := t.NumRows()
		rows := make([][]int, n)
		backing := make([]int, n*len(cards))
		for i := range rows {
			rows[i] = backing[i*len(cards) : (i+1)*len(cards)]
			if err := m.encodeRow(i, rows[i]); err != nil {
				return nil, err
			}
		}
		m.Losses, err = arm.Fit(rows, nn.TrainConfig{
			LR: cfg.LR, BatchSize: cfg.BatchSize, Epochs: cfg.Epochs, Seed: cfg.Seed + 2,
			OnEpoch: cfg.OnEpoch, Ctx: ctx,
		})
		if err != nil {
			return nil, err
		}
	}

	m.sessCap = cfg.NumSamples
	m.sess = arm.Net.NewSession(m.sessCap)
	m.rng = rand.New(rand.NewSource(cfg.Seed + 3))
	return m, nil
}

// encodeRow writes AR codes for table row ri.
func (m *Model) encodeRow(ri int, dst []int) error {
	for _, ci := range m.order {
		info := &m.cols[ci]
		code, err := m.rawCode(ci, ri)
		if err != nil {
			return fmt.Errorf("naru: encoding row %d: %w", ri, err)
		}
		if info.factored {
			info.factor.SplitInto(dst[info.arFirst:info.arFirst+info.arCount], code)
		} else {
			dst[info.arFirst] = code
		}
	}
	return nil
}

func (m *Model) rawCode(ci, ri int) (int, error) {
	c := m.table.Columns[ci]
	if c.Kind == dataset.Categorical {
		return c.Ints[ri], nil
	}
	return m.cols[ci].enc.EncodeFloat(c.Floats[ri])
}

// Name implements estimator.Estimator.
func (m *Model) Name() string { return "Neurocard" }

// SizeBytes reports the network parameter size (float32-equivalent).
func (m *Model) SizeBytes() int { return m.arm.Net.SizeBytes() }

// ARColumns returns the AR column cardinalities.
func (m *Model) ARColumns() []int { return append([]int(nil), m.arm.Cards...) }

// BuildConstraints converts a query into per-AR-column sampling constraints
// (exported for UAE, which trains through the same machinery).
func (m *Model) BuildConstraints(q *query.Query) ([]ar.Constraint, error) {
	if q.Table != m.table {
		return nil, fmt.Errorf("naru: query targets table %q, model trained on %q", q.Table.Name, m.table.Name)
	}
	cons := make([]ar.Constraint, len(m.arm.Cards))
	for ci, r := range q.Ranges {
		if r == nil {
			continue
		}
		info := &m.cols[ci]
		loCode, hiCode, ok, err := m.codeRange(ci, r)
		if err != nil {
			return nil, err
		}
		if !ok {
			cons[info.arFirst] = ar.EmptyConstraint{}
			continue
		}
		if !info.factored {
			cons[info.arFirst] = ar.RangeConstraint{Lo: loCode, Hi: hiCode}
			continue
		}
		for p := 0; p < info.arCount; p++ {
			cons[info.arFirst+p] = ar.FactoredConstraint{
				Spec: info.factor, Part: p, FirstCol: info.arFirst,
				Lo: loCode, Hi: hiCode,
			}
		}
	}
	return cons, nil
}

// codeRange maps a raw-value interval to an inclusive ordinal code range.
func (m *Model) codeRange(ci int, r *query.Interval) (int, int, bool, error) {
	c := m.table.Columns[ci]
	info := &m.cols[ci]
	if r.Lo > r.Hi {
		return 0, 0, false, nil
	}
	if c.Kind == dataset.Categorical {
		lo := 0
		if !math.IsInf(r.Lo, -1) {
			lo = int(math.Ceil(r.Lo))
			//lint:ignore floateq exact integer roundtrip decides whether an exclusive float bound excludes the integer code
			if float64(lo) == r.Lo && !r.LoInc {
				lo++
			}
		}
		hi := info.enc.Card - 1
		if !math.IsInf(r.Hi, 1) {
			hi = int(math.Floor(r.Hi))
			//lint:ignore floateq exact integer roundtrip decides whether an exclusive float bound excludes the integer code
			if float64(hi) == r.Hi && !r.HiInc {
				hi--
			}
		}
		if lo < 0 {
			lo = 0
		}
		if hi > info.enc.Card-1 {
			hi = info.enc.Card - 1
		}
		if lo > hi {
			return 0, 0, false, nil
		}
		return lo, hi, true, nil
	}
	return info.enc.RangeToCodes(r.Lo, r.Hi, r.LoInc, r.HiInc)
}

// Estimate implements estimator.Estimator via progressive sampling.
func (m *Model) Estimate(q *query.Query) (float64, error) {
	res, err := m.EstimateBatch([]*query.Query{q})
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// EstimateBatch stacks several queries into one sampling run (Table 7).
func (m *Model) EstimateBatch(qs []*query.Query) ([]float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	consList := make([][]ar.Constraint, len(qs))
	for i, q := range qs {
		cons, err := m.BuildConstraints(q)
		if err != nil {
			return nil, err
		}
		consList[i] = cons
	}
	need := len(qs) * m.cfg.NumSamples
	if need > m.sessCap {
		m.sessCap = need
		m.sess = m.arm.Net.NewSession(need)
	}
	return m.arm.EstimateBatch(m.sess, consList, m.cfg.NumSamples, m.rng)
}

// AR exposes the underlying autoregressive model (for UAE).
func (m *Model) AR() *ar.Model { return m.arm }

// NumSamples exposes the configured sampling width (for UAE).
func (m *Model) NumSamples() int { return m.cfg.NumSamples }
