// Package optimizer implements the end-to-end experiment of the paper's
// §6.4 (Figure 5): a System-R-style left-deep join-order optimizer whose
// cardinality estimates come from a pluggable selectivity estimator, plus a
// hash-join executor that actually runs the chosen plans over the star
// schema. The paper modifies Postgres to accept external selectivities; we
// substitute this self-contained optimizer+executor, preserving the causal
// chain the experiment demonstrates: better estimates → better join orders
// → fewer intermediate tuples → faster execution.
package optimizer

import (
	"fmt"
	"time"

	"iam/internal/join"
	"iam/internal/query"
)

// Planner chooses left-deep join orders using estimated cardinalities.
type Planner struct {
	Schema *join.Schema
	Est    join.CardEstimator
}

// Plan is a chosen left-deep join order with its estimated C_out cost.
type Plan struct {
	// Order lists table names, first table joined first.
	Order   []string
	EstCost float64
}

// Plan enumerates cross-product-free left-deep orders and returns the one
// with minimum estimated C_out (sum of intermediate cardinalities).
func (p *Planner) Plan(jq *join.JoinQuery) (*Plan, error) {
	tables := jq.Tables(p.Schema)
	if len(tables) == 1 {
		return &Plan{Order: tables}, nil
	}
	orders := p.validOrders(tables)
	best := (*Plan)(nil)
	for _, order := range orders {
		cost, err := p.estimateCost(jq, order)
		if err != nil {
			return nil, err
		}
		if best == nil || cost < best.EstCost {
			best = &Plan{Order: order, EstCost: cost}
		}
	}
	return best, nil
}

// validOrders enumerates left-deep permutations whose every prefix is
// connected (contains the root, or is a single child table).
func (p *Planner) validOrders(tables []string) [][]string {
	var out [][]string
	var rec func(prefix []string, rest []string)
	root := p.Schema.Root.Name
	connected := func(prefix []string) bool {
		if len(prefix) <= 1 {
			return true
		}
		for _, t := range prefix {
			if t == root {
				return true
			}
		}
		return false
	}
	rec = func(prefix, rest []string) {
		if !connected(prefix) {
			return
		}
		if len(rest) == 0 {
			out = append(out, append([]string(nil), prefix...))
			return
		}
		for i := range rest {
			next := append(prefix, rest[i])
			remaining := make([]string, 0, len(rest)-1)
			remaining = append(remaining, rest[:i]...)
			remaining = append(remaining, rest[i+1:]...)
			rec(next, remaining)
		}
	}
	rec(nil, tables)
	return out
}

// estimateCost sums estimated prefix cardinalities (C_out).
func (p *Planner) estimateCost(jq *join.JoinQuery, order []string) (float64, error) {
	var cost float64
	for k := 2; k <= len(order); k++ {
		sub := p.subQuery(jq, order[:k])
		card, err := p.Est.EstimateCard(sub)
		if err != nil {
			return 0, err
		}
		cost += card
	}
	return cost, nil
}

// subQuery restricts jq to a table subset. A subset without the root is a
// single child table; it is expressed as a root-predicate-free query on
// that child (every child row joins exactly one root row, so the
// cardinality matches the filtered child scan).
func (p *Planner) subQuery(jq *join.JoinQuery, tables []string) *join.JoinQuery {
	sub := &join.JoinQuery{Children: map[string]*query.Query{}}
	root := p.Schema.Root.Name
	for _, t := range tables {
		if t == root {
			sub.Root = jq.Root
			continue
		}
		sub.Children[t] = jq.Children[t]
	}
	return sub
}

// ExecResult reports one plan execution.
type ExecResult struct {
	Tuples        int           // final result size
	Intermediates float64       // Σ intermediate result sizes (C_out)
	Elapsed       time.Duration // wall-clock execution time
}

// Execute runs the join order with hash-join semantics over the schema and
// measures actual intermediate sizes and wall time.
func Execute(s *join.Schema, jq *join.JoinQuery, order []string) (*ExecResult, error) {
	start := time.Now()
	root := s.Root.Name

	// tuple: root row (-1 = not joined yet) plus per-child row (-1).
	type tuple struct {
		r    int
		kids []int
	}
	nKids := len(s.Children)
	childIdx := func(name string) (int, error) {
		for ci := range s.Children {
			if s.Children[ci].Table.Name == name {
				return ci, nil
			}
		}
		return 0, fmt.Errorf("optimizer: unknown table %q", name)
	}
	childFilter := func(ci, row int) bool {
		q := jq.Children[s.Children[ci].Table.Name]
		return q == nil || q.Matches(row)
	}
	rootFilter := func(r int) bool {
		return jq.Root == nil || jq.Root.Matches(r)
	}

	var cur []tuple
	haveRoot := false
	var intermediates float64

	for step, name := range order {
		if step == 0 {
			if name == root {
				for r := 0; r < s.Root.NumRows(); r++ {
					if rootFilter(r) {
						cur = append(cur, tuple{r: r, kids: make([]int, nKids)})
					}
				}
				haveRoot = true
			} else {
				ci, err := childIdx(name)
				if err != nil {
					return nil, err
				}
				child := &s.Children[ci]
				for row := 0; row < child.Table.NumRows(); row++ {
					if childFilter(ci, row) {
						tp := tuple{r: -1, kids: make([]int, nKids)}
						for k := range tp.kids {
							tp.kids[k] = -1
						}
						tp.kids[ci] = row
						tp.r = child.FK[row] // remembered for the root join
						cur = append(cur, tp)
					}
				}
			}
			continue
		}
		var next []tuple
		if name == root {
			// Join the root: the FK already identifies the partner.
			for _, tp := range cur {
				if rootFilter(tp.r) {
					next = append(next, tp)
				}
			}
			haveRoot = true
		} else {
			ci, err := childIdx(name)
			if err != nil {
				return nil, err
			}
			if !haveRoot {
				return nil, fmt.Errorf("optimizer: disconnected prefix before %q", name)
			}
			for _, tp := range cur {
				for _, row := range childRows(s, ci, tp.r) {
					if childFilter(ci, row) {
						nt := tuple{r: tp.r, kids: append([]int(nil), tp.kids...)}
						nt.kids[ci] = row
						next = append(next, nt)
					}
				}
			}
		}
		cur = next
		intermediates += float64(len(cur))
	}
	return &ExecResult{
		Tuples:        len(cur),
		Intermediates: intermediates,
		Elapsed:       time.Since(start),
	}, nil
}

// childRows exposes the schema's join index (kept package-local in join).
func childRows(s *join.Schema, ci, rootRow int) []int {
	return s.ChildRowsOf(ci, rootRow)
}

// RunWorkload plans and executes every query of a workload with the
// planner's estimator, returning the summed execution metrics — the
// "end-to-end time" of Figure 5.
func RunWorkload(s *join.Schema, est join.CardEstimator, w *join.JoinWorkload) (totalElapsed time.Duration, totalIntermediates float64, err error) {
	p := &Planner{Schema: s, Est: est}
	for _, jq := range w.Queries {
		plan, err := p.Plan(jq)
		if err != nil {
			return 0, 0, err
		}
		res, err := Execute(s, jq, plan.Order)
		if err != nil {
			return 0, 0, err
		}
		totalElapsed += res.Elapsed
		totalIntermediates += res.Intermediates
	}
	return totalElapsed, totalIntermediates, nil
}

// Oracle is a CardEstimator that returns exact cardinalities — the
// optimal-plan reference line in Figure 5.
type Oracle struct {
	Schema *join.Schema
}

// Name implements join.CardEstimator.
func (o *Oracle) Name() string { return "TrueCard" }

// EstimateCard implements join.CardEstimator exactly.
func (o *Oracle) EstimateCard(jq *join.JoinQuery) (float64, error) {
	return o.Schema.ExactCard(jq)
}
