package optimizer

import (
	"math"
	"testing"

	"iam/internal/dataset"
	"iam/internal/join"
	"iam/internal/query"
)

func testSchema() *join.Schema {
	return join.NewIMDBSchema(dataset.SynthIMDB(500, 1))
}

func TestValidOrdersExcludeCrossProducts(t *testing.T) {
	s := testSchema()
	p := &Planner{Schema: s, Est: &Oracle{Schema: s}}
	orders := p.validOrders([]string{"title", "movie_info", "cast_info"})
	if len(orders) != 4 {
		t.Fatalf("got %d orders, want 4 (cross products pruned)", len(orders))
	}
	for _, o := range orders {
		if o[0] != "title" && o[1] != "title" {
			t.Fatalf("order %v has a cross-product prefix", o)
		}
	}
}

func TestExecuteMatchesExactCard(t *testing.T) {
	s := testSchema()
	w, err := s.GenerateWorkload(join.GenJoinConfig{NumQueries: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := &Planner{Schema: s, Est: &Oracle{Schema: s}}
	for i, jq := range w.Queries {
		plan, err := p.Plan(jq)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(s, jq, plan.Order)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Tuples) != w.Cards[i] {
			t.Fatalf("query %d: executed %d tuples, exact card %v (order %v)",
				i, res.Tuples, w.Cards[i], plan.Order)
		}
	}
}

func TestExecuteAllOrdersSameResult(t *testing.T) {
	// Every valid join order must produce the same final cardinality.
	s := testSchema()
	jq := &join.JoinQuery{
		Root: query.NewQuery(s.Root),
		Children: map[string]*query.Query{
			"movie_info": query.NewQuery(s.Children[0].Table),
			"cast_info":  query.NewQuery(s.Children[1].Table),
		},
	}
	if err := jq.Root.AddPredicate(query.Predicate{Col: "kind", Op: query.Le, Value: 3}); err != nil {
		t.Fatal(err)
	}
	p := &Planner{Schema: s, Est: &Oracle{Schema: s}}
	orders := p.validOrders(jq.Tables(s))
	var first int = -1
	for _, order := range orders {
		res, err := Execute(s, jq, order)
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = res.Tuples
		} else if res.Tuples != first {
			t.Fatalf("order %v produced %d tuples, others %d", order, res.Tuples, first)
		}
	}
}

// badEstimator inverts cardinalities to force bad plans.
type badEstimator struct{ s *join.Schema }

func (badEstimator) Name() string { return "Adversarial" }
func (b badEstimator) EstimateCard(jq *join.JoinQuery) (float64, error) {
	card, err := b.s.ExactCard(jq)
	if err != nil {
		return 0, err
	}
	return 1e12 / (card + 1), nil // big becomes small and vice versa
}

func TestOracleBeatsAdversarialPlans(t *testing.T) {
	s := testSchema()
	w, err := s.GenerateWorkload(join.GenJoinConfig{NumQueries: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, interOracle, err := RunWorkload(s, &Oracle{Schema: s}, w)
	if err != nil {
		t.Fatal(err)
	}
	_, interBad, err := RunWorkload(s, badEstimator{s}, w)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle's plans must produce no more intermediate tuples.
	if interOracle > interBad {
		t.Fatalf("oracle intermediates %v exceed adversarial %v", interOracle, interBad)
	}
}

func TestPlanSingleTable(t *testing.T) {
	s := testSchema()
	p := &Planner{Schema: s, Est: &Oracle{Schema: s}}
	jq := &join.JoinQuery{Root: query.NewQuery(s.Root), Children: map[string]*query.Query{}}
	plan, err := p.Plan(jq)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != 1 || plan.Order[0] != "title" {
		t.Fatalf("plan %v", plan.Order)
	}
	res, err := Execute(s, jq, plan.Order)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != s.Root.NumRows() {
		t.Fatalf("tuples %d", res.Tuples)
	}
	if math.IsNaN(res.Intermediates) {
		t.Fatal("NaN intermediates")
	}
}
