// Package dataset defines the relational table model used throughout the
// repository: typed columns, ordinal value encoding, column factorization,
// synthetic dataset generators mirroring the paper's four evaluation datasets
// (WISDM, TWI, HIGGS, IMDB), and the correlation/skewness statistics the
// paper reports (NCIE and Fisher skewness).
package dataset

import (
	"fmt"
	"math"
	"sort"
)

// Kind distinguishes categorical from continuous columns.
type Kind int

const (
	// Categorical columns hold dense integer codes in [0, Card).
	Categorical Kind = iota
	// Continuous columns hold float64 values with potentially huge domains.
	Continuous
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column is a single named attribute stored columnar.
//
// Exactly one of Ints (categorical codes) or Floats (continuous values) is
// populated, according to Kind.
type Column struct {
	Name   string
	Kind   Kind
	Ints   []int     // categorical codes, dense in [0, Card)
	Floats []float64 // continuous values
	Card   int       // categorical cardinality (0 for continuous)
	Labels []string  // optional human labels for categorical codes
}

// Len returns the number of rows stored in the column.
func (c *Column) Len() int {
	if c.Kind == Categorical {
		return len(c.Ints)
	}
	return len(c.Floats)
}

// DistinctCount returns the number of distinct values in the column.
func (c *Column) DistinctCount() int {
	if c.Kind == Categorical {
		seen := make(map[int]struct{}, c.Card)
		for _, v := range c.Ints {
			seen[v] = struct{}{}
		}
		return len(seen)
	}
	seen := make(map[float64]struct{}, 1024)
	for _, v := range c.Floats {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// MinMax returns the smallest and largest value of a continuous column.
// It errors on categorical columns or empty data.
func (c *Column) MinMax() (lo, hi float64, err error) {
	if c.Kind != Continuous {
		return 0, 0, fmt.Errorf("dataset: MinMax on categorical column %s", c.Name)
	}
	if len(c.Floats) == 0 {
		return 0, 0, fmt.Errorf("dataset: MinMax on empty column %s", c.Name)
	}
	lo, hi = c.Floats[0], c.Floats[0]
	for _, v := range c.Floats[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, nil
}

// Table is a set of equal-length columns.
type Table struct {
	Name    string
	Columns []*Column
}

// NumRows returns the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Columns) }

// Column returns the column with the given name, or nil if absent.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants: equal column lengths, dense
// categorical codes within [0, Card).
func (t *Table) Validate() error {
	n := t.NumRows()
	for _, c := range t.Columns {
		if c.Len() != n {
			return fmt.Errorf("dataset: column %q has %d rows, table has %d", c.Name, c.Len(), n)
		}
		if c.Kind == Categorical {
			if c.Card <= 0 {
				return fmt.Errorf("dataset: categorical column %q has Card=%d", c.Name, c.Card)
			}
			for i, v := range c.Ints {
				if v < 0 || v >= c.Card {
					return fmt.Errorf("dataset: column %q row %d code %d out of [0,%d)", c.Name, i, v, c.Card)
				}
			}
		}
	}
	return nil
}

// JointDomainLog10 returns log10 of the product of all column domain sizes —
// the "Joint" statistic in the paper's Table 1.
func (t *Table) JointDomainLog10() float64 {
	var s float64
	for _, c := range t.Columns {
		d := c.DistinctCount()
		if d > 0 {
			s += math.Log10(float64(d))
		}
	}
	return s
}

// Stats summarises a table the way the paper's Table 1 does.
type Stats struct {
	Name           string
	Rows           int
	ColsCat        int
	ColsCon        int
	JointLog10     float64
	NCIE           float64
	FisherSkewMean float64
	FisherSkewMax  float64
}

// Describe computes the Table 1 statistics for t.
func Describe(t *Table) Stats {
	s := Stats{Name: t.Name, Rows: t.NumRows()}
	for _, c := range t.Columns {
		if c.Kind == Categorical {
			s.ColsCat++
		} else {
			s.ColsCon++
		}
	}
	s.JointLog10 = t.JointDomainLog10()
	s.NCIE = NCIE(t, 0)
	mean, max := FisherSkewness(t)
	s.FisherSkewMean = mean
	s.FisherSkewMax = max
	return s
}

// SortedDistinct returns the ascending distinct values of a continuous
// column. The result is freshly allocated.
func SortedDistinct(values []float64) []float64 {
	if len(values) == 0 {
		return nil
	}
	cp := append([]float64(nil), values...)
	sort.Float64s(cp)
	out := cp[:1]
	for _, v := range cp[1:] {
		//lint:ignore floateq dedup of sorted values; duplicates are bit-identical copies, not computed floats
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
