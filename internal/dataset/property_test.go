package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRangeToCodesCountsMatch checks, for random intervals, that the code
// range returned by RangeToCodes covers exactly the distinct values inside
// the interval.
func TestRangeToCodesCountsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = float64(rng.Intn(100)) + rng.Float64()*0.5 // duplicates + gaps
	}
	c := &Column{Name: "v", Kind: Continuous, Floats: vals}
	e := BuildEncoder(c)
	distinct := SortedDistinct(vals)

	f := func(a, b float64, loInc, hiInc bool) bool {
		lo := float64(int(a*1000) % 110)
		hi := float64(int(b*1000) % 110)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for _, v := range distinct {
			inLo := v > lo || (v == lo && loInc)
			inHi := v < hi || (v == hi && hiInc)
			if inLo && inHi {
				want++
			}
		}
		loCode, hiCode, ok, err := e.RangeToCodes(lo, hi, loInc, hiInc)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		if ok {
			got = hiCode - loCode + 1
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeIdentityProperty: decode(encode(v)) == v for every value
// present in the column.
func TestEncodeDecodeIdentityProperty(t *testing.T) {
	tb := SynthHIGGS(1500, 2)
	for _, c := range tb.Columns {
		e := BuildEncoder(c)
		for i, v := range c.Floats {
			code, err := e.EncodeFloat(v)
			if err != nil {
				t.Fatal(err)
			}
			if e.DecodeFloat(code) != v {
				t.Fatalf("col %s row %d: roundtrip broke", c.Name, i)
			}
			if i > 300 {
				break
			}
		}
	}
}

// TestFactorOrderPreserving: mixed-radix factorization preserves order
// lexicographically.
func TestFactorOrderPreserving(t *testing.T) {
	spec, err := NewFactorSpec(5000, 64)
	if err != nil {
		t.Fatal(err)
	}
	prev := spec.Split(0)
	for code := 1; code < 5000; code += 7 {
		cur := spec.Split(code)
		leq := false
		for i := range prev {
			if prev[i] < cur[i] {
				leq = true
				break
			}
			if prev[i] > cur[i] {
				break
			}
		}
		if !leq {
			t.Fatalf("factorization not order-preserving at code %d: %v vs %v", code, prev, cur)
		}
		prev = cur
	}
}
