package dataset

import (
	"math"
	"math/rand"
)

// The paper evaluates on four real datasets (WISDM, TWI, HIGGS, IMDB) that we
// cannot ship. The generators below synthesise datasets with the same schema
// and the same statistical character the paper measures: column counts and
// kinds (Table 1), strong/weak correlation (NCIE) and weak/strong skew
// (Fisher skewness). Row counts are scaled down so the full evaluation runs
// on a CPU; continuous domains remain ≫1000 distinct values so the paper's
// core challenge (huge progressive-sampling space) is preserved.

// round quantises v to a grid of step 1/p, bounding the distinct count the
// way sensor precision does in the real datasets.
func round(v float64, p float64) float64 {
	return math.Round(v*p) / p
}

// zipfWeights returns normalized weights w_i ∝ 1/(i+1)^s.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sampleWeighted draws an index according to weights (which must sum to 1).
func sampleWeighted(rng *rand.Rand, weights []float64) int {
	u := rng.Float64()
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// SynthWISDM generates a WISDM-like sensor table: subject (51 categories),
// activity (18 categories) and three continuous accelerometer axes whose
// distribution clusters per (subject, activity) pair — giving the strong
// categorical→continuous correlation and moderate skew the paper reports
// (NCIE 0.33, skew 2.3).
func SynthWISDM(n int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	const nSubj, nAct = 51, 18
	subjW := zipfWeights(nSubj, 0.6)
	actW := zipfWeights(nAct, 0.5)

	// Per-(subject, activity) cluster parameters for the 3 sensor axes.
	type cluster struct {
		mu    [3]float64
		sigma [3]float64
	}
	clusters := make([]cluster, nSubj*nAct)
	for i := range clusters {
		for d := 0; d < 3; d++ {
			clusters[i].mu[d] = rng.NormFloat64() * 4
			clusters[i].sigma[d] = 0.15 + math.Abs(rng.NormFloat64())*0.5
		}
	}

	subj := make([]int, n)
	act := make([]int, n)
	axes := [3][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		s := sampleWeighted(rng, subjW)
		a := sampleWeighted(rng, actW)
		subj[i] = s
		act[i] = a
		c := clusters[s*nAct+a]
		for d := 0; d < 3; d++ {
			v := c.mu[d] + rng.NormFloat64()*c.sigma[d]
			// Occasional one-sided heavy tail: phone drops, spikes.
			if rng.Float64() < 0.03 {
				v += math.Abs(rng.NormFloat64()) * 6 * c.sigma[d]
			}
			axes[d][i] = round(v, 1e4)
		}
	}
	return &Table{
		Name: "wisdm",
		Columns: []*Column{
			{Name: "subject_id", Kind: Categorical, Ints: subj, Card: nSubj},
			{Name: "activity_code", Kind: Categorical, Ints: act, Card: nAct},
			{Name: "x", Kind: Continuous, Floats: axes[0]},
			{Name: "y", Kind: Continuous, Floats: axes[1]},
			{Name: "z", Kind: Continuous, Floats: axes[2]},
		},
	}
}

// SynthTWI generates a TWI-like spatial table: latitude/longitude of
// geo-tagged tweets drawn from a Zipf-weighted mixture of population-centre
// clusters over a US-shaped bounding box. Latitude and longitude are strongly
// correlated through the shared cluster identity (paper: NCIE 0.37).
func SynthTWI(n int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	const nCenters = 60
	type center struct {
		lat, lon, sigma, tilt float64
	}
	centers := make([]center, nCenters)
	for i := range centers {
		centers[i] = center{
			lat:   25 + rng.Float64()*24,   // 25..49
			lon:   -124 + rng.Float64()*57, // -124..-67
			sigma: 0.05 + rng.Float64()*1.2,
			tilt:  rng.NormFloat64() * 0.6,
		}
	}
	w := zipfWeights(nCenters, 1.05)
	lat := make([]float64, n)
	lon := make([]float64, n)
	for i := 0; i < n; i++ {
		c := centers[sampleWeighted(rng, w)]
		dLat := rng.NormFloat64() * c.sigma
		dLon := rng.NormFloat64()*c.sigma + c.tilt*dLat
		lat[i] = round(c.lat+dLat, 1e5)
		lon[i] = round(c.lon+dLon, 1e5)
	}
	return &Table{
		Name: "twi",
		Columns: []*Column{
			{Name: "latitude", Kind: Continuous, Floats: lat},
			{Name: "longitude", Kind: Continuous, Floats: lon},
		},
	}
}

// SynthHIGGS generates a HIGGS-like table: seven continuous derived-mass
// features with heavy right skew (lognormal-style tails) and weak
// cross-column correlation (paper: NCIE 0.67, skew 81).
func SynthHIGGS(n int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"m_jj", "m_jjj", "m_lv", "m_jlv", "m_bb", "m_wbb", "m_wwbb"}
	// Per-column lognormal parameters; m_wwbb gets the fattest tail.
	mus := []float64{0.0, 0.2, -0.2, 0.1, 0.0, 0.3, 0.4}
	sig := []float64{0.55, 0.6, 0.5, 0.6, 0.7, 0.8, 1.25}
	cols := make([]*Column, len(names))
	data := make([][]float64, len(names))
	for j := range data {
		data[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		// A weak shared latent factor induces mild correlation.
		z := rng.NormFloat64() * 0.25
		for j := range names {
			v := math.Exp(mus[j] + sig[j]*(rng.NormFloat64()+z))
			data[j][i] = round(v, 1e3)
		}
	}
	for j, name := range names {
		cols[j] = &Column{Name: name, Kind: Continuous, Floats: data[j]}
	}
	return &Table{Name: "higgs", Columns: cols}
}

// IMDB is the multi-table dataset for join experiments: a star schema rooted
// at Title with two fact tables. Following the paper's construction (§6.1.1),
// TWI-style latitude/longitude columns are attached to title and WISDM-style
// x/y/z columns to movie_info. Join keys are kept out of the modelled columns
// (NeuroCard-style); foreign keys live in the FK slices, indexing Title rows.
type IMDB struct {
	Title     *Table // kind, production_year, latitude, longitude
	MovieInfo *Table // info_type, x, y, z
	CastInfo  *Table // role_type, person_group
	// MovieInfoFK[i] is the Title row joined by MovieInfo row i; same for cast.
	MovieInfoFK []int
	CastInfoFK  []int
}

// SynthIMDB generates the IMDB-like schema. nTitle controls the dimension
// table size; the fact tables get Zipf-distributed fanouts (some movies have
// many info rows / cast members), producing the skewed join-size distribution
// that makes join cardinality estimation hard.
func SynthIMDB(nTitle int, seed int64) *IMDB {
	rng := rand.New(rand.NewSource(seed))
	const nKind, nYear = 7, 80
	const nInfoType, nRole, nPerson = 20, 12, 200

	kindW := zipfWeights(nKind, 0.9)
	// Title table with TWI-style coordinates whose cluster depends on kind.
	type geo struct{ lat, lon, sigma float64 }
	kindGeo := make([]geo, nKind)
	for i := range kindGeo {
		kindGeo[i] = geo{25 + rng.Float64()*24, -124 + rng.Float64()*57, 0.3 + rng.Float64()*2}
	}
	kind := make([]int, nTitle)
	year := make([]int, nTitle)
	lat := make([]float64, nTitle)
	lon := make([]float64, nTitle)
	for i := 0; i < nTitle; i++ {
		k := sampleWeighted(rng, kindW)
		kind[i] = k
		// Years skew recent, correlated with kind.
		y := nYear - 1 - int(math.Abs(rng.NormFloat64())*float64(nYear)/4)
		y = (y + k*3) % nYear
		if y < 0 {
			y = 0
		}
		year[i] = y
		g := kindGeo[k]
		lat[i] = round(g.lat+rng.NormFloat64()*g.sigma, 1e4)
		lon[i] = round(g.lon+rng.NormFloat64()*g.sigma*1.3, 1e4)
	}
	title := &Table{
		Name: "title",
		Columns: []*Column{
			{Name: "kind", Kind: Categorical, Ints: kind, Card: nKind},
			{Name: "production_year", Kind: Categorical, Ints: year, Card: nYear},
			{Name: "latitude", Kind: Continuous, Floats: lat},
			{Name: "longitude", Kind: Continuous, Floats: lon},
		},
	}

	// movie_info: Zipf fanout per title, info_type correlated with kind,
	// x/y/z clustered per info_type (WISDM-style).
	type cluster struct{ mu, sigma [3]float64 }
	infoClusters := make([]cluster, nInfoType)
	for i := range infoClusters {
		for d := 0; d < 3; d++ {
			infoClusters[i].mu[d] = rng.NormFloat64() * 3
			infoClusters[i].sigma[d] = 0.2 + rng.Float64()*0.8
		}
	}
	var miType []int
	var miX, miY, miZ []float64
	var miFK []int
	for t := 0; t < nTitle; t++ {
		fanout := 1 + rng.Intn(3)
		if rng.Float64() < 0.08 {
			fanout += rng.Intn(18) // popular movies: many info rows
		}
		for f := 0; f < fanout; f++ {
			it := (kind[t]*3 + rng.Intn(6)) % nInfoType
			c := infoClusters[it]
			miFK = append(miFK, t)
			miType = append(miType, it)
			miX = append(miX, round(c.mu[0]+rng.NormFloat64()*c.sigma[0], 1e4))
			miY = append(miY, round(c.mu[1]+rng.NormFloat64()*c.sigma[1], 1e4))
			miZ = append(miZ, round(c.mu[2]+rng.NormFloat64()*c.sigma[2], 1e4))
		}
	}
	movieInfo := &Table{
		Name: "movie_info",
		Columns: []*Column{
			{Name: "info_type", Kind: Categorical, Ints: miType, Card: nInfoType},
			{Name: "x", Kind: Continuous, Floats: miX},
			{Name: "y", Kind: Continuous, Floats: miY},
			{Name: "z", Kind: Continuous, Floats: miZ},
		},
	}

	// cast_info: fanout correlated with year (newer movies → larger casts),
	// person group Zipf-distributed and correlated with kind.
	personW := zipfWeights(nPerson, 1.1)
	var ciRole, ciPerson, ciFK []int
	for t := 0; t < nTitle; t++ {
		fanout := 1 + rng.Intn(2) + year[t]/25
		if rng.Float64() < 0.05 {
			fanout += rng.Intn(12)
		}
		for f := 0; f < fanout; f++ {
			ciFK = append(ciFK, t)
			ciRole = append(ciRole, (kind[t]+rng.Intn(4))%nRole)
			ciPerson = append(ciPerson, (sampleWeighted(rng, personW)+kind[t]*17)%nPerson)
		}
	}
	castInfo := &Table{
		Name: "cast_info",
		Columns: []*Column{
			{Name: "role_type", Kind: Categorical, Ints: ciRole, Card: nRole},
			{Name: "person_group", Kind: Categorical, Ints: ciPerson, Card: nPerson},
		},
	}

	return &IMDB{
		Title:       title,
		MovieInfo:   movieInfo,
		CastInfo:    castInfo,
		MovieInfoFK: miFK,
		CastInfoFK:  ciFK,
	}
}
