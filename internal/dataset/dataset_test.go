package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSynthWISDMShape(t *testing.T) {
	tb := SynthWISDM(5000, 1)
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 5000 || tb.NumCols() != 5 {
		t.Fatalf("rows=%d cols=%d", tb.NumRows(), tb.NumCols())
	}
	st := Describe(tb)
	if st.ColsCat != 2 || st.ColsCon != 3 {
		t.Fatalf("cat=%d con=%d, want 2/3", st.ColsCat, st.ColsCon)
	}
	// Continuous domains must be large enough to trigger GMM reduction.
	for _, name := range []string{"x", "y", "z"} {
		if d := tb.Column(name).DistinctCount(); d < 1000 {
			t.Fatalf("column %s distinct=%d, want >1000", name, d)
		}
	}
}

func TestSynthTWIShape(t *testing.T) {
	tb := SynthTWI(5000, 2)
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.NumCols() != 2 {
		t.Fatalf("cols=%d", tb.NumCols())
	}
	lo, hi, err := tb.Column("latitude").MinMax()
	if err != nil {
		t.Fatal(err)
	}
	if lo < 15 || hi > 60 {
		t.Fatalf("latitude range [%v,%v] implausible", lo, hi)
	}
}

func TestSynthHIGGSSkewAndWeakCorrelation(t *testing.T) {
	tb := SynthHIGGS(8000, 3)
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.NumCols() != 7 {
		t.Fatalf("cols=%d", tb.NumCols())
	}
	_, maxSkew := FisherSkewness(tb)
	if maxSkew < 3 {
		t.Fatalf("HIGGS max skew = %v, want strong right skew", maxSkew)
	}
}

func TestNCIEOrdering(t *testing.T) {
	// The paper reports WISDM/TWI strongly correlated (low NCIE) and HIGGS
	// weakly correlated (high NCIE); our synthetic data must reproduce the
	// ordering.
	wisdm := NCIE(SynthWISDM(6000, 4), 0)
	twi := NCIE(SynthTWI(6000, 4), 0)
	higgs := NCIE(SynthHIGGS(6000, 4), 0)
	if !(wisdm < higgs) || !(twi < higgs) {
		t.Fatalf("NCIE ordering violated: wisdm=%.3f twi=%.3f higgs=%.3f", wisdm, twi, higgs)
	}
	for name, v := range map[string]float64{"wisdm": wisdm, "twi": twi, "higgs": higgs} {
		if v < 0 || v > 1 {
			t.Fatalf("NCIE(%s)=%v out of [0,1]", name, v)
		}
	}
}

func TestNCIEIndependentNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	tb := &Table{Name: "ind", Columns: []*Column{
		{Name: "a", Kind: Continuous, Floats: a},
		{Name: "b", Kind: Continuous, Floats: b},
	}}
	if v := NCIE(tb, 0); v < 0.85 {
		t.Fatalf("NCIE of independent data = %v, want near 1", v)
	}
}

func TestNCIEPerfectlyCorrelatedNearZero(t *testing.T) {
	n := 4000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(i) * 0.37
		b[i] = a[i]*a[i] + 5 // nonlinear but deterministic
	}
	tb := &Table{Name: "dep", Columns: []*Column{
		{Name: "a", Kind: Continuous, Floats: a},
		{Name: "b", Kind: Continuous, Floats: b},
	}}
	if v := NCIE(tb, 0); v > 0.3 {
		t.Fatalf("NCIE of dependent data = %v, want near 0", v)
	}
}

func TestFisherSkewSymmetricIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 20000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	g := fisherSkew(x)
	if math.Abs(g) > 0.1 {
		t.Fatalf("skew of N(0,1) sample = %v, want ≈0", g)
	}
}

func TestEncoderContinuousRoundTrip(t *testing.T) {
	c := &Column{Name: "v", Kind: Continuous, Floats: []float64{3.5, 1.0, 2.0, 2.0, 9.9}}
	e := BuildEncoder(c)
	if e.Card != 4 {
		t.Fatalf("card=%d, want 4", e.Card)
	}
	for _, v := range []float64{1.0, 2.0, 3.5, 9.9} {
		code, err := e.EncodeFloat(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.DecodeFloat(code); got != v {
			t.Fatalf("roundtrip %v -> %d -> %v", v, code, got)
		}
	}
	if _, err := e.EncodeFloat(4.2); err == nil {
		t.Fatal("expected error encoding out-of-domain value")
	}
}

func TestEncoderOrderPreserved(t *testing.T) {
	c := &Column{Name: "v", Kind: Continuous, Floats: []float64{5, -1, 3, 0}}
	e := BuildEncoder(c)
	prev := math.Inf(-1)
	for code := 0; code < e.Card; code++ {
		v := e.DecodeFloat(code)
		if v <= prev {
			t.Fatalf("encoding not order-preserving at code %d", code)
		}
		prev = v
	}
}

func TestRangeToCodes(t *testing.T) {
	c := &Column{Name: "v", Kind: Continuous, Floats: []float64{1, 2, 3, 4, 5}}
	e := BuildEncoder(c)
	cases := []struct {
		lo, hi         float64
		loInc, hiInc   bool
		wantLo, wantHi int
		wantOK         bool
	}{
		{2, 4, true, true, 1, 3, true},
		{2, 4, false, false, 2, 2, true},
		{0, 10, true, true, 0, 4, true},
		{2.5, 2.9, true, true, 0, 0, false},
		{4, 2, true, true, 0, 0, false},
		{5, 5, true, true, 4, 4, true},
		{5, 5, false, true, 0, 0, false},
		{math.Inf(-1), 3, true, false, 0, 1, true},
	}
	for i, cse := range cases {
		lo, hi, ok, err := e.RangeToCodes(cse.lo, cse.hi, cse.loInc, cse.hiInc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if ok != cse.wantOK || (ok && (lo != cse.wantLo || hi != cse.wantHi)) {
			t.Fatalf("case %d: got (%d,%d,%v), want (%d,%d,%v)", i, lo, hi, ok, cse.wantLo, cse.wantHi, cse.wantOK)
		}
	}
}

func TestEncodeTable(t *testing.T) {
	tb := SynthTWI(500, 5)
	te := BuildTableEncoder(tb)
	rows, err := te.EncodeTable(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("rows=%d", len(rows))
	}
	cards := te.Cards()
	for i, r := range rows {
		for j, code := range r {
			if code < 0 || code >= cards[j] {
				t.Fatalf("row %d col %d code %d out of [0,%d)", i, j, code, cards[j])
			}
		}
	}
	// Spot-check decode matches raw value.
	raw := tb.Columns[0].Floats[123]
	if got := te.Encoders[0].DecodeFloat(rows[123][0]); got != raw {
		t.Fatalf("decode mismatch %v vs %v", got, raw)
	}
}

func TestFactorSpecRoundTripProperty(t *testing.T) {
	f := func(card16 uint16, code32 uint32) bool {
		card := int(card16)%100000 + 2
		spec, err := NewFactorSpec(card, 2048)
		if err != nil {
			return false
		}
		code := int(code32) % card
		sub := spec.Split(code)
		if len(sub) != len(spec.Bases) {
			return false
		}
		for i, s := range sub {
			if s < 0 || s >= spec.Bases[i] {
				return false
			}
		}
		return spec.Join(sub) == code
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorSpecShape(t *testing.T) {
	spec, err := NewFactorSpec(1_000_000, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Bases) != 2 {
		t.Fatalf("bases=%v, want 2 subcolumns", spec.Bases)
	}
	if spec.Bases[0]*spec.Bases[1] < 1_000_000 {
		t.Fatalf("bases product %d < card", spec.Bases[0]*spec.Bases[1])
	}
	small, err := NewFactorSpec(100, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Bases) != 1 || small.Bases[0] != 100 {
		t.Fatalf("small card factored: %v", small.Bases)
	}
}

func TestSynthIMDBIntegrity(t *testing.T) {
	db := SynthIMDB(800, 6)
	for _, tb := range []*Table{db.Title, db.MovieInfo, db.CastInfo} {
		if err := tb.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if len(db.MovieInfoFK) != db.MovieInfo.NumRows() {
		t.Fatalf("movie_info FK len %d vs rows %d", len(db.MovieInfoFK), db.MovieInfo.NumRows())
	}
	if len(db.CastInfoFK) != db.CastInfo.NumRows() {
		t.Fatalf("cast_info FK len %d vs rows %d", len(db.CastInfoFK), db.CastInfo.NumRows())
	}
	for _, fk := range db.MovieInfoFK {
		if fk < 0 || fk >= db.Title.NumRows() {
			t.Fatalf("movie_info FK %d out of range", fk)
		}
	}
	for _, fk := range db.CastInfoFK {
		if fk < 0 || fk >= db.Title.NumRows() {
			t.Fatalf("cast_info FK %d out of range", fk)
		}
	}
	// Fact tables must be larger than the dimension table (fanout ≥ 1).
	if db.MovieInfo.NumRows() < db.Title.NumRows() {
		t.Fatal("movie_info smaller than title")
	}
}

func TestDescribeTable1(t *testing.T) {
	tb := SynthWISDM(3000, 7)
	st := Describe(tb)
	if st.Rows != 3000 {
		t.Fatalf("rows=%d", st.Rows)
	}
	if st.JointLog10 <= 0 {
		t.Fatalf("joint log10 = %v", st.JointLog10)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := SynthTWI(200, 42)
	b := SynthTWI(200, 42)
	for i := range a.Columns[0].Floats {
		if a.Columns[0].Floats[i] != b.Columns[0].Floats[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := SynthTWI(200, 43)
	same := true
	for i := range a.Columns[0].Floats {
		if a.Columns[0].Floats[i] != c.Columns[0].Floats[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}
