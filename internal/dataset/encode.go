package dataset

import (
	"fmt"
	"sort"
)

// ColumnEncoder maps the raw values of one column onto dense ordinal codes
// [0, Card), preserving value order — the encoding strategy of Naru/NeuroCard
// that the paper adopts (§3). Continuous columns get one code per distinct
// value; categorical columns pass their codes through unchanged.
type ColumnEncoder struct {
	Name string
	Kind Kind
	Card int
	vals []float64 // ascending distinct values (continuous only)
}

// BuildEncoder constructs the encoder for a column from its data.
func BuildEncoder(c *Column) *ColumnEncoder {
	e := &ColumnEncoder{Name: c.Name, Kind: c.Kind}
	if c.Kind == Categorical {
		e.Card = c.Card
		return e
	}
	e.vals = SortedDistinct(c.Floats)
	e.Card = len(e.vals)
	return e
}

// EncodeFloat returns the code of a continuous value. The value must occur in
// the column the encoder was built from.
//
// iam:noalloc
func (e *ColumnEncoder) EncodeFloat(v float64) (int, error) {
	i := sort.SearchFloat64s(e.vals, v)
	//lint:ignore floateq domain membership over exactly stored values; a near-miss is out of domain by definition
	if i >= len(e.vals) || e.vals[i] != v {
		//lint:ignore noalloc cold out-of-domain path, never taken while the table matches the encoder
		return 0, fmt.Errorf("dataset: value %v not in domain of column %q", v, e.Name)
	}
	return i, nil
}

// DecodeFloat returns the continuous value for a code.
func (e *ColumnEncoder) DecodeFloat(code int) float64 {
	return e.vals[code]
}

// RangeToCodes maps a half-open/closed interval over raw continuous values to
// an inclusive code interval [loCode, hiCode]. If the interval contains no
// domain value it returns ok=false. loInc/hiInc select ≤/≥ versus </>. It
// errors on categorical encoders, whose codes are not ordered intervals.
func (e *ColumnEncoder) RangeToCodes(lo, hi float64, loInc, hiInc bool) (loCode, hiCode int, ok bool, err error) {
	if e.Kind != Continuous {
		return 0, 0, false, fmt.Errorf("dataset: RangeToCodes on categorical encoder %s", e.Name)
	}
	// Smallest index with vals[i] >= lo (or > lo when exclusive).
	loCode = sort.SearchFloat64s(e.vals, lo)
	//lint:ignore floateq domain membership over exactly stored values; the code interval is defined by bit equality
	if !loInc && loCode < len(e.vals) && e.vals[loCode] == lo {
		loCode++
	}
	// Largest index with vals[i] <= hi (or < hi when exclusive).
	hiCode = sort.SearchFloat64s(e.vals, hi)
	//lint:ignore floateq domain membership over exactly stored values; the code interval is defined by bit equality
	if hiCode < len(e.vals) && e.vals[hiCode] == hi && hiInc {
		// keep: vals[hiCode] == hi qualifies
	} else {
		hiCode--
	}
	if loCode > hiCode || loCode >= len(e.vals) || hiCode < 0 {
		return 0, 0, false, nil
	}
	return loCode, hiCode, true, nil
}

// Values exposes the ascending distinct values backing a continuous
// encoder (nil for categorical encoders) — used for serialization.
func (e *ColumnEncoder) Values() []float64 { return e.vals }

// RestoreEncoder rebuilds an encoder from serialized state: categorical
// encoders from (name, card), continuous ones from their distinct values.
func RestoreEncoder(name string, kind Kind, card int, vals []float64) *ColumnEncoder {
	e := &ColumnEncoder{Name: name, Kind: kind}
	if kind == Categorical {
		e.Card = card
		return e
	}
	e.vals = vals
	e.Card = len(vals)
	return e
}

// TableEncoder bundles per-column encoders for a table.
type TableEncoder struct {
	Encoders []*ColumnEncoder
}

// BuildTableEncoder constructs encoders for every column of t.
func BuildTableEncoder(t *Table) *TableEncoder {
	te := &TableEncoder{Encoders: make([]*ColumnEncoder, len(t.Columns))}
	for i, c := range t.Columns {
		te.Encoders[i] = BuildEncoder(c)
	}
	return te
}

// Cards returns the encoded domain size of each column.
func (te *TableEncoder) Cards() []int {
	out := make([]int, len(te.Encoders))
	for i, e := range te.Encoders {
		out[i] = e.Card
	}
	return out
}

// EncodeTable converts every row of t into ordinal codes. The result is a
// row-major matrix backed by one allocation.
func (te *TableEncoder) EncodeTable(t *Table) ([][]int, error) {
	n := t.NumRows()
	ncols := len(t.Columns)
	if ncols != len(te.Encoders) {
		return nil, fmt.Errorf("dataset: encoder/table column count mismatch %d vs %d", len(te.Encoders), ncols)
	}
	flat := make([]int, n*ncols)
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = flat[i*ncols : (i+1)*ncols]
	}
	for j, c := range t.Columns {
		e := te.Encoders[j]
		if c.Kind == Categorical {
			for i, v := range c.Ints {
				rows[i][j] = v
			}
			continue
		}
		for i, v := range c.Floats {
			code, err := e.EncodeFloat(v)
			if err != nil {
				return nil, err
			}
			rows[i][j] = code
		}
	}
	return rows, nil
}

// FactorSpec describes NeuroCard-style column factorization: a code in
// [0, Card) is split into len(Bases) subcolumn codes by mixed-radix
// decomposition, most-significant subcolumn first. Factorization is lossless
// (chain rule, paper §4.2).
type FactorSpec struct {
	Card  int
	Bases []int // subcolumn domain sizes, most significant first
}

// NewFactorSpec splits a domain of size card into subcolumns of size at most
// maxSub. A card ≤ maxSub yields a single identity subcolumn.
func NewFactorSpec(card, maxSub int) (FactorSpec, error) {
	if card <= 0 || maxSub <= 1 {
		return FactorSpec{}, fmt.Errorf("dataset: invalid factorization parameters card=%d maxSub=%d", card, maxSub)
	}
	if card <= maxSub {
		return FactorSpec{Card: card, Bases: []int{card}}, nil
	}
	// Number of subcolumns needed so that maxSub^k >= card.
	k := 1
	prod := maxSub
	for prod < card {
		k++
		if prod > card/maxSub+1 {
			prod = card // avoid overflow; loop will exit
		} else {
			prod *= maxSub
		}
	}
	bases := make([]int, k)
	for i := 1; i < k; i++ {
		bases[i] = maxSub
	}
	// Most significant base is just large enough.
	lowProd := 1
	for i := 1; i < k; i++ {
		lowProd *= maxSub
	}
	bases[0] = (card + lowProd - 1) / lowProd
	return FactorSpec{Card: card, Bases: bases}, nil
}

// Split decomposes code into subcolumn codes (most significant first).
func (f FactorSpec) Split(code int) []int {
	out := make([]int, len(f.Bases))
	f.SplitInto(out, code)
	return out
}

// SplitInto writes the decomposition of code into dst, which must have
// len(f.Bases) elements.
func (f FactorSpec) SplitInto(dst []int, code int) {
	for i := len(f.Bases) - 1; i >= 0; i-- {
		b := f.Bases[i]
		dst[i] = code % b
		code /= b
	}
}

// Digit returns subcolumn p of the decomposition of code without allocating —
// the progressive sampler calls this in its per-sample inner loop, where a
// Split slice per call would dominate the allocation profile.
func (f FactorSpec) Digit(code, p int) int {
	stride := 1
	for i := len(f.Bases) - 1; i > p; i-- {
		stride *= f.Bases[i]
	}
	return (code / stride) % f.Bases[p]
}

// Join recomposes subcolumn codes into the original code.
func (f FactorSpec) Join(sub []int) int {
	code := 0
	for i, b := range f.Bases {
		code = code*b + sub[i]
	}
	return code
}
