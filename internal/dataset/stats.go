package dataset

import (
	"math"
	"sort"

	"iam/internal/vecmath"
)

// columnAsFloats exposes any column as float64s (categorical codes cast).
func columnAsFloats(c *Column) []float64 {
	if c.Kind == Continuous {
		return c.Floats
	}
	out := make([]float64, len(c.Ints))
	for i, v := range c.Ints {
		out[i] = float64(v)
	}
	return out
}

// ranks returns the 0-based rank of each element of x (ties broken by
// position, which is sufficient for rank-grid binning).
func ranks(x []float64) []int {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]int, len(x))
	for rank, i := range idx {
		r[i] = rank
	}
	return r
}

// nccPair computes the nonlinear correlation coefficient between two columns
// using a b×b rank grid (Wang et al., 2005). With base-b logarithms the
// marginal rank entropies equal 1, so NCC = 2 − H_b(X,Y) ∈ [0, 1]: 0 means
// independent, 1 fully dependent.
func nccPair(rx, ry []int, n, b int) float64 {
	counts := make([]int, b*b)
	for i := 0; i < n; i++ {
		cx := rx[i] * b / n
		cy := ry[i] * b / n
		if cx >= b {
			cx = b - 1
		}
		if cy >= b {
			cy = b - 1
		}
		counts[cx*b+cy]++
	}
	logB := math.Log(float64(b))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		h -= p * math.Log(p) / logB
	}
	ncc := 2 - h
	return vecmath.Clamp(ncc, 0, 1)
}

// NCIE computes the Nonlinear Correlation Information Entropy of a table.
// Smaller values indicate stronger cross-column correlation (the convention
// the paper uses in §6.1.1). bins selects the rank-grid resolution; pass 0
// for an automatic choice.
func NCIE(t *Table, bins int) float64 {
	nCols := t.NumCols()
	n := t.NumRows()
	if nCols < 2 || n < 8 {
		return 1 // degenerate: treat as uncorrelated
	}
	if bins <= 0 {
		bins = int(math.Sqrt(float64(n)) / 2)
		if bins < 4 {
			bins = 4
		}
		if bins > 64 {
			bins = 64
		}
	}
	colRanks := make([][]int, nCols)
	for i, c := range t.Columns {
		colRanks[i] = ranks(columnAsFloats(c))
	}
	r := vecmath.NewMatrix(nCols, nCols)
	for i := 0; i < nCols; i++ {
		r.Set(i, i, 1)
		for j := i + 1; j < nCols; j++ {
			v := nccPair(colRanks[i], colRanks[j], n, bins)
			r.Set(i, j, v)
			r.Set(j, i, v)
		}
	}
	ev := vecmath.SymEigenvalues(r)
	nf := float64(nCols)
	logN := math.Log(nf)
	var h float64
	for _, lam := range ev {
		if lam <= 1e-12 {
			continue
		}
		p := lam / nf
		h -= p * math.Log(p) / logN
	}
	return vecmath.Clamp(h, 0, 1)
}

// FisherSkewness returns the mean per-column Fisher skewness (third
// standardized moment) and the single column value with largest magnitude.
func FisherSkewness(t *Table) (mean, max float64) {
	var sum float64
	count := 0
	for _, c := range t.Columns {
		if c.Kind != Continuous {
			continue
		}
		g := fisherSkew(c.Floats)
		sum += g
		if math.Abs(g) > math.Abs(max) {
			max = g
		}
		count++
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), max
}

func fisherSkew(x []float64) float64 {
	n := float64(len(x))
	if n < 3 {
		return 0
	}
	mu := vecmath.Mean(x)
	var m2, m3 float64
	for _, v := range x {
		d := v - mu
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 <= 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}
