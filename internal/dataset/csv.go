package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CSV import/export. The on-disk format is a header row of column names
// followed by data rows. On import, a column whose every value parses as a
// number is treated according to opts; otherwise it becomes categorical
// with codes assigned by lexicographic label order (matching the paper's
// encoding example: dog→1, cat→0, monkey→2).

// CSVOptions controls schema inference during import.
type CSVOptions struct {
	// CategoricalMaxDistinct: a numeric column with at most this many
	// distinct values is imported as categorical (default 0: numeric
	// columns are always continuous).
	CategoricalMaxDistinct int
	// ForceCategorical lists column names imported as categorical
	// regardless of content.
	ForceCategorical []string
}

// ReadCSV parses a table from r.
func ReadCSV(name string, r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("dataset: csv needs a header and at least one row")
	}
	header := records[0]
	nCols := len(header)
	rows := records[1:]
	for i, rec := range rows {
		if len(rec) != nCols {
			return nil, fmt.Errorf("dataset: row %d has %d fields, header has %d", i+1, len(rec), nCols)
		}
	}
	forced := map[string]bool{}
	for _, n := range opts.ForceCategorical {
		forced[n] = true
	}

	t := &Table{Name: name}
	for j, colName := range header {
		raw := make([]string, len(rows))
		for i, rec := range rows {
			raw[i] = rec[j]
		}
		col, err := buildColumn(colName, raw, forced[colName], opts.CategoricalMaxDistinct)
		if err != nil {
			return nil, err
		}
		t.Columns = append(t.Columns, col)
	}
	return t, t.Validate()
}

// buildColumn infers one column's kind and encodes it.
func buildColumn(name string, raw []string, forceCat bool, catMax int) (*Column, error) {
	numeric := !forceCat
	vals := make([]float64, len(raw))
	if numeric {
		for i, s := range raw {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				numeric = false
				break
			}
			vals[i] = v
		}
	}
	if numeric && catMax > 0 {
		seen := map[float64]struct{}{}
		for _, v := range vals {
			seen[v] = struct{}{}
			if len(seen) > catMax {
				break
			}
		}
		if len(seen) <= catMax {
			numeric = false // low-cardinality numeric → categorical
			for i, v := range vals {
				raw[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
	}
	if numeric {
		return &Column{Name: name, Kind: Continuous, Floats: vals}, nil
	}
	// Categorical: codes by lexicographic label order.
	labels := append([]string(nil), raw...)
	sort.Strings(labels)
	uniq := labels[:0]
	for i, l := range labels {
		if i == 0 || l != uniq[len(uniq)-1] {
			uniq = append(uniq, l)
		}
	}
	codeOf := make(map[string]int, len(uniq))
	for code, l := range uniq {
		codeOf[l] = code
	}
	ints := make([]int, len(raw))
	for i, s := range raw {
		ints[i] = codeOf[s]
	}
	return &Column{
		Name: name, Kind: Categorical, Ints: ints,
		Card: len(uniq), Labels: append([]string(nil), uniq...),
	}, nil
}

// WriteCSV writes the table to w (header + rows). Categorical columns emit
// their labels when present, codes otherwise.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.NumCols())
	for j, c := range t.Columns {
		header[j] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Columns {
			if c.Kind == Categorical {
				code := c.Ints[i]
				if len(c.Labels) > code {
					rec[j] = c.Labels[code]
				} else {
					rec[j] = strconv.Itoa(code)
				}
			} else {
				rec[j] = strconv.FormatFloat(c.Floats[i], 'g', -1, 64)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
