package dataset

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `animal,weight,age
dog,12.5,3
cat,4.1,5
monkey,20,3
cat,3.9,2
`

func TestReadCSVSchemaInference(t *testing.T) {
	tb, err := ReadCSV("zoo", strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 || tb.NumCols() != 3 {
		t.Fatalf("shape %dx%d", tb.NumRows(), tb.NumCols())
	}
	animal := tb.Column("animal")
	if animal.Kind != Categorical || animal.Card != 3 {
		t.Fatalf("animal kind=%v card=%d", animal.Kind, animal.Card)
	}
	// Lexicographic codes: cat=0, dog=1, monkey=2 (the paper's example).
	want := []int{1, 0, 2, 0}
	for i, w := range want {
		if animal.Ints[i] != w {
			t.Fatalf("animal codes %v, want %v", animal.Ints, want)
		}
	}
	if tb.Column("weight").Kind != Continuous {
		t.Fatal("weight should be continuous")
	}
	if tb.Column("age").Kind != Continuous {
		t.Fatal("age defaults to continuous without CategoricalMaxDistinct")
	}
}

func TestReadCSVCategoricalMaxDistinct(t *testing.T) {
	tb, err := ReadCSV("zoo", strings.NewReader(sampleCSV), CSVOptions{CategoricalMaxDistinct: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Column("age").Kind != Categorical {
		t.Fatal("age (3 distinct) should become categorical")
	}
	if tb.Column("weight").Kind != Continuous {
		t.Fatal("weight (4 distinct) must remain continuous")
	}
}

func TestReadCSVForceCategorical(t *testing.T) {
	tb, err := ReadCSV("zoo", strings.NewReader(sampleCSV), CSVOptions{ForceCategorical: []string{"weight"}})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Column("weight").Kind != Categorical {
		t.Fatal("forced column not categorical")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := ReadCSV("zoo", strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(orig, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("zoo", bytes.NewReader(buf.Bytes()), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range orig.Columns {
		oc, bc := orig.Columns[j], back.Columns[j]
		if oc.Kind != bc.Kind || oc.Len() != bc.Len() {
			t.Fatalf("column %s changed shape", oc.Name)
		}
		for i := 0; i < oc.Len(); i++ {
			if oc.Kind == Categorical && oc.Ints[i] != bc.Ints[i] {
				t.Fatalf("column %s row %d code changed", oc.Name, i)
			}
			if oc.Kind == Continuous && oc.Floats[i] != bc.Floats[i] {
				t.Fatalf("column %s row %d value changed", oc.Name, i)
			}
		}
	}
}

func TestCSVRoundTripSynthetic(t *testing.T) {
	orig := SynthWISDM(300, 5)
	var buf bytes.Buffer
	if err := WriteCSV(orig, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("wisdm", bytes.NewReader(buf.Bytes()), CSVOptions{CategoricalMaxDistinct: 60})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 300 || back.NumCols() != 5 {
		t.Fatalf("shape %dx%d", back.NumRows(), back.NumCols())
	}
	// Continuous values survive exactly (FormatFloat 'g' -1 is lossless).
	for i, v := range orig.Column("x").Floats[:50] {
		if back.Column("x").Floats[i] != v {
			t.Fatalf("x[%d] changed: %v vs %v", i, back.Column("x").Floats[i], v)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"a,b\n",         // header only
		"a,b\n1,2\n3\n", // ragged row
	}
	for _, s := range cases {
		if _, err := ReadCSV("bad", strings.NewReader(s), CSVOptions{}); err == nil {
			t.Fatalf("expected error for %q", s)
		}
	}
}
