package vecmath

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Reference implementations: the straightforward triple loops the blocked
// kernels must match bit-for-bit (these are the pre-blocking kernel bodies).

func naiveMatMul(dst, a, b *Matrix) {
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			//lint:ignore floateq reference kernel mirrors the production zero-skip exactly
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

func naiveMatMulATB(dst, a, b *Matrix) {
	dst.Zero()
	for n := 0; n < a.Rows; n++ {
		arow := a.Row(n)
		brow := b.Row(n)
		for i, av := range arow {
			//lint:ignore floateq reference kernel mirrors the production zero-skip exactly
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

func naiveMatMulABT(dst, a, b *Matrix) {
	c := a.Cols
	c4 := c - c%4
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s0, s1, s2, s3 float64
			for k := 0; k < c4; k += 4 {
				s0 += arow[k] * brow[k]
				s1 += arow[k+1] * brow[k+1]
				s2 += arow[k+2] * brow[k+2]
				s3 += arow[k+3] * brow[k+3]
			}
			s := s0 + s1 + s2 + s3
			for k := c4; k < c; k++ {
				s += arow[k] * brow[k]
			}
			drow[j] = s
		}
	}
}

func randMat(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		switch rng.Intn(8) {
		case 0:
			m.Data[i] = 0 // exercise the zero-skip paths
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

// bitEqual demands exact bit equality, not ApproxEqual: the blocked kernels
// claim the same accumulation order as the naive ones.
func bitEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %v (bits %x), naive %v (bits %x)",
				name, i, got.Data[i], math.Float64bits(got.Data[i]),
				want.Data[i], math.Float64bits(want.Data[i]))
		}
	}
}

// kernelShapes spans tiny, tail (non-multiple of the unroll/block sizes),
// and large-enough-to-parallelize shapes.
var kernelShapes = [][3]int{
	{1, 1, 1}, {2, 3, 5}, {7, 4, 9}, {8, 8, 8},
	{17, 33, 65}, {63, 127, 31}, {100, 300, 50}, {256, 40, 300},
	{513, 7, 129},
}

func TestBlockedKernelsBitIdenticalToNaive(t *testing.T) {
	for _, par := range []int{1, 4} {
		prev := Parallelism(par)
		rng := rand.New(rand.NewSource(11))
		for _, sh := range kernelShapes {
			n, k, m := sh[0], sh[1], sh[2]

			a := randMat(n, k, rng)
			b := randMat(k, m, rng)
			got, want := NewMatrix(n, m), NewMatrix(n, m)
			MatMul(got, a, b)
			naiveMatMul(want, a, b)
			bitEqual(t, "MatMul", got, want)

			at := randMat(n, k, rng)
			bt := randMat(n, m, rng)
			got, want = NewMatrix(k, m), NewMatrix(k, m)
			MatMulATB(got, at, bt)
			naiveMatMulATB(want, at, bt)
			bitEqual(t, "MatMulATB", got, want)

			aa := randMat(n, k, rng)
			bb := randMat(m, k, rng)
			got, want = NewMatrix(n, m), NewMatrix(n, m)
			MatMulABT(got, aa, bb)
			naiveMatMulABT(want, aa, bb)
			bitEqual(t, "MatMulABT", got, want)
		}
		Parallelism(prev)
	}
}

// TestParallelKernelsConcurrent runs many large matmuls from several
// goroutines at once: the bounded pool must neither deadlock nor mix up
// outputs when every caller competes for the same worker budget.
func TestParallelKernelsConcurrent(t *testing.T) {
	prev := Parallelism(4)
	defer Parallelism(prev)
	rng := rand.New(rand.NewSource(21))
	a := randMat(200, 80, rng)
	b := randMat(80, 120, rng)
	want := NewMatrix(200, 120)
	naiveMatMul(want, a, b)

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := NewMatrix(200, 120)
			for it := 0; it < 20; it++ {
				MatMul(dst, a, b)
				for i := range want.Data {
					if math.Float64bits(dst.Data[i]) != math.Float64bits(want.Data[i]) {
						errs <- "concurrent MatMul diverged from naive result"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestParallelismKnob(t *testing.T) {
	prev := Parallelism(0) // query
	if prev < 1 {
		t.Fatalf("default parallelism %d, want >= 1", prev)
	}
	if got := Parallelism(3); got != prev {
		t.Fatalf("Parallelism(3) returned %d, want previous %d", got, prev)
	}
	if got := Parallelism(prev); got != 3 {
		t.Fatalf("Parallelism restore returned %d, want 3", got)
	}
}

// TestSerialMatMulNoAlloc pins the allocation-free property the estimate hot
// path depends on: with a worker budget of 1 no kernel may heap-allocate.
func TestSerialMatMulNoAlloc(t *testing.T) {
	prev := Parallelism(1)
	defer Parallelism(prev)
	a := NewMatrix(64, 48)   // 64×48
	b := NewMatrix(48, 80)   // 48×80: a·b
	bt := NewMatrix(80, 48)  // 80×48: a·btᵀ
	b2 := NewMatrix(64, 80)  // 64×80: aᵀ·b2
	dst := NewMatrix(64, 80) // a·b and a·btᵀ
	dstATB := NewMatrix(48, 80)
	for i := range a.Data {
		a.Data[i] = float64(i%7) + 0.5
	}
	for i := range b.Data {
		b.Data[i] = float64(i%5) - 1.5
	}
	copy(bt.Data, b.Data[:len(bt.Data)])
	copy(b2.Data, b.Data)
	if n := testing.AllocsPerRun(20, func() { MatMul(dst, a, b) }); n > 0 {
		t.Fatalf("serial MatMul allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(20, func() { MatMulABT(dst, a, bt) }); n > 0 {
		t.Fatalf("serial MatMulABT allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(20, func() { MatMulATB(dstATB, a, b2) }); n > 0 {
		t.Fatalf("serial MatMulATB allocates %v per op", n)
	}
}

func benchMats(n, k, m int) (a, b, bt, dst *Matrix) {
	rng := rand.New(rand.NewSource(31))
	a = randMat(n, k, rng)
	b = randMat(k, m, rng)
	bt = randMat(m, k, rng)
	dst = NewMatrix(n, m)
	return
}

func BenchmarkMatMul(b *testing.B) {
	a, bm, _, dst := benchMats(256, 128, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, bm)
	}
	flops := 2 * 256 * 128 * 256
	b.ReportMetric(float64(flops)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkMatMulABT(b *testing.B) {
	a, _, bt, dst := benchMats(256, 128, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulABT(dst, a, bt)
	}
	flops := 2 * 256 * 128 * 256
	b.ReportMetric(float64(flops)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkMatMulNaiveABT(b *testing.B) {
	a, _, bt, dst := benchMats(256, 128, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveMatMulABT(dst, a, bt)
	}
	flops := 2 * 256 * 128 * 256
	b.ReportMetric(float64(flops)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}
