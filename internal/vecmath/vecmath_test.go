package vecmath

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMatMul(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := NewMatrix(2, 2)
	MatMul(c, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(c.Data[i], w, 1e-12) {
			t.Fatalf("matmul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

func TestMatMulATBAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(5, 4)
	b := NewMatrix(5, 3)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := NewMatrix(4, 3)
	MatMulATB(got, a, b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			var want float64
			for n := 0; n < 5; n++ {
				want += a.At(n, i) * b.At(n, j)
			}
			if !almostEq(got.At(i, j), want, 1e-10) {
				t.Fatalf("ATB[%d][%d] = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestMatMulABTAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(4, 6)
	b := NewMatrix(3, 6)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := NewMatrix(4, 3)
	MatMulABT(got, a, b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			var want float64
			for k := 0; k < 6; k++ {
				want += a.At(i, k) * b.At(j, k)
			}
			if !almostEq(got.At(i, j), want, 1e-10) {
				t.Fatalf("ABT[%d][%d] = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, len(raw))
		for i, v := range raw {
			// Keep logits finite but allow a wide range.
			logits[i] = math.Mod(v, 500)
			if math.IsNaN(logits[i]) {
				logits[i] = 0
			}
		}
		out := make([]float64, len(logits))
		Softmax(out, logits)
		var s float64
		for _, p := range out {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			s += p
		}
		return almostEq(s, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableUnderHugeLogits(t *testing.T) {
	logits := []float64{1000, 1001, 999}
	out := make([]float64, 3)
	Softmax(out, logits)
	if !almostEq(Sum(out), 1, 1e-9) {
		t.Fatalf("softmax sum = %v", Sum(out))
	}
	if ArgMax(out) != 1 {
		t.Fatalf("argmax = %d, want 1", ArgMax(out))
	}
}

func TestLogSumExp(t *testing.T) {
	x := []float64{-1, 0, 2.5}
	var direct float64
	for _, v := range x {
		direct += math.Exp(v)
	}
	if !almostEq(LogSumExp(x), math.Log(direct), 1e-12) {
		t.Fatalf("lse = %v, want %v", LogSumExp(x), math.Log(direct))
	}
	// Stability: values that would overflow exp directly.
	big := []float64{700, 710, 705}
	got := LogSumExp(big)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("lse overflowed: %v", got)
	}
}

func TestNormalizeFallsBackToUniform(t *testing.T) {
	x := []float64{0, 0, 0}
	if Normalize(x) {
		t.Fatal("expected Normalize to report failure on zero vector")
	}
	for _, v := range x {
		if !almostEq(v, 1.0/3, 1e-12) {
			t.Fatalf("uniform fallback = %v", x)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
	}
	for _, c := range cases {
		got := NormalCDF(c.x, 0, 1)
		if !almostEq(got, c.want, 1e-9) {
			t.Fatalf("cdf(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// Numerically integrate the pdf and compare with the cdf difference.
	mu, sigma := 1.5, 0.7
	lo, hi := -1.0, 3.0
	n := 20000
	h := (hi - lo) / float64(n)
	var integral float64
	for i := 0; i < n; i++ {
		x := lo + (float64(i)+0.5)*h
		integral += NormalPDF(x, mu, sigma) * h
	}
	want := NormalRangeMass(lo, hi, mu, sigma)
	if !almostEq(integral, want, 1e-6) {
		t.Fatalf("∫pdf = %v, cdf mass = %v", integral, want)
	}
}

func TestNormalLogPDFMatchesPDF(t *testing.T) {
	for _, x := range []float64{-3, 0, 0.5, 10} {
		lp := NormalLogPDF(x, 1, 2)
		p := NormalPDF(x, 1, 2)
		if !almostEq(math.Exp(lp), p, 1e-12) {
			t.Fatalf("exp(logpdf(%v)) = %v, pdf = %v", x, math.Exp(lp), p)
		}
	}
}

func TestNormalRangeMassReversedInterval(t *testing.T) {
	if m := NormalRangeMass(2, 1, 0, 1); m != 0 {
		t.Fatalf("reversed interval mass = %v, want 0", m)
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := Quantile(x, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(x, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(x, 0.5); got != 3 {
		t.Fatalf("q0.5 = %v", got)
	}
	if got := Quantile(x, 0.25); got != 2 {
		t.Fatalf("q0.25 = %v", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 101)
	for i := range x {
		x[i] = rng.Float64() * 100
	}
	sort.Float64s(x)
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := Quantile(x, q)
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestArgMaxFirstOnTies(t *testing.T) {
	if got := ArgMax([]float64{3, 1, 3}); got != 0 {
		t.Fatalf("argmax tie = %d, want 0", got)
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(x), 5, 1e-12) {
		t.Fatalf("mean = %v", Mean(x))
	}
	if !almostEq(Variance(x), 4, 1e-12) {
		t.Fatalf("variance = %v", Variance(x))
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp broken")
	}
}

func TestAxpyScaleSum(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, y)
	if y[0] != 3 || y[1] != 4 || y[2] != 5 {
		t.Fatalf("axpy = %v", y)
	}
	Scale(0.5, y)
	if !almostEq(Sum(y), 6, 1e-12) {
		t.Fatalf("sum = %v", Sum(y))
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}
