package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMatMulPacked is the scalar reference for the packed kernel: one
// output at a time, steps in schedule order, each live block reduced by the
// documented four-lane chain. The production kernel's two-output micro-tile
// must match it bit-for-bit.
func naiveMatMulPacked(dst, x, w *Matrix, bias []float64, steps []PackedStep) {
	for r := 0; r < x.Rows; r++ {
		xrow := x.Row(r)
		drow := dst.Row(r)
		for o := 0; o < w.Rows; o++ {
			wrow := w.Row(o)
			acc := bias[o]
			for _, st := range steps {
				if st.Width == 0 {
					acc += st.Part[o]
					continue
				}
				k0, k1 := st.Off, st.Off+st.Width
				k4 := k1 - st.Width%4
				var s0, s1, s2, s3 float64
				for k := k0; k < k4; k += 4 {
					s0 += xrow[k] * wrow[k]
					s1 += xrow[k+1] * wrow[k+1]
					s2 += xrow[k+2] * wrow[k+2]
					s3 += xrow[k+3] * wrow[k+3]
				}
				s := s0 + s1 + s2 + s3
				for k := k4; k < k1; k++ {
					s += xrow[k] * wrow[k]
				}
				acc += s
			}
			drow[o] = acc
		}
	}
}

// randSchedule builds a schedule of nSteps column blocks whose live blocks
// tile [0, packedDim) in order; wildMask selects which steps are wildcards.
// Widths deliberately include non-multiples of four to exercise tails.
func randSchedule(nSteps, out int, wildMask uint, rng *rand.Rand) (steps []PackedStep, packedDim int) {
	for i := 0; i < nSteps; i++ {
		if wildMask&(1<<uint(i)) != 0 {
			part := make([]float64, out)
			for o := range part {
				part[o] = rng.NormFloat64()
			}
			steps = append(steps, PackedStep{Part: part})
			continue
		}
		w := 1 + rng.Intn(11) // 1..11: covers <4, ==4k, and tail widths
		steps = append(steps, PackedStep{Off: packedDim, Width: w})
		packedDim += w
	}
	return steps, packedDim
}

func TestMatMulPackedBitIdenticalToNaive(t *testing.T) {
	for _, par := range []int{1, 4} {
		prev := Parallelism(par)
		rng := rand.New(rand.NewSource(41))
		for _, out := range []int{1, 2, 7, 64, 129} {
			for _, nSteps := range []int{1, 2, 5, 9} {
				for trial := 0; trial < 4; trial++ {
					wildMask := uint(rng.Intn(1 << uint(nSteps)))
					steps, dim := randSchedule(nSteps, out, wildMask, rng)
					rows := 1 + rng.Intn(97)
					x := randMat(rows, dim, rng)
					w := randMat(out, dim, rng)
					bias := make([]float64, out)
					for o := range bias {
						bias[o] = rng.NormFloat64()
					}
					got, want := NewMatrix(rows, out), NewMatrix(rows, out)
					MatMulPacked(got, x, w, bias, steps)
					naiveMatMulPacked(want, x, w, bias, steps)
					bitEqual(t, "MatMulPacked", got, want)
				}
			}
		}
		Parallelism(prev)
	}
}

// TestMatMulPackedAllWild pins the degenerate schedule where every column is
// a wildcard: the packed dimension is zero and each output row is exactly
// bias + ΣPart, identical for every row.
func TestMatMulPackedAllWild(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const out = 33
	steps, dim := randSchedule(4, out, 0xF, rng)
	if dim != 0 {
		t.Fatalf("all-wild schedule has packed dim %d, want 0", dim)
	}
	x := NewMatrix(5, 0)
	w := NewMatrix(out, 0)
	bias := make([]float64, out)
	for o := range bias {
		bias[o] = rng.NormFloat64()
	}
	dst := NewMatrix(5, out)
	MatMulPacked(dst, x, w, bias, steps)
	for o := 0; o < out; o++ {
		want := bias[o]
		for _, st := range steps {
			want += st.Part[o]
		}
		for r := 0; r < 5; r++ {
			if math.Float64bits(dst.Row(r)[o]) != math.Float64bits(want) {
				t.Fatalf("all-wild row %d out %d = %v, want %v", r, o, dst.Row(r)[o], want)
			}
		}
	}
}

// TestMatMulPackedSingleStepMatchesABT: a schedule with one live block
// spanning the whole panel and zero bias is exactly dst = x·wᵀ, and the
// per-output chain coincides with MatMulABT's — so the two kernels must
// agree bit-for-bit. This anchors PackedBlockDot as the same reduction the
// blocked ABT kernel uses.
func TestMatMulPackedSingleStepMatchesABT(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, sh := range kernelShapes {
		rows, dim, out := sh[0], sh[1], sh[2]
		x := randMat(rows, dim, rng)
		w := randMat(out, dim, rng)
		bias := make([]float64, out)
		steps := []PackedStep{{Off: 0, Width: dim}}
		got, want := NewMatrix(rows, out), NewMatrix(rows, out)
		MatMulPacked(got, x, w, bias, steps)
		MatMulABT(want, x, w)
		bitEqual(t, "MatMulPacked vs MatMulABT", got, want)
	}
}

func TestPackedBlockDotMatchesNaiveChain(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for n := 0; n <= 19; n++ {
		w := make([]float64, n)
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			w[i], x[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		n4 := n - n%4
		var s0, s1, s2, s3 float64
		for k := 0; k < n4; k += 4 {
			s0 += x[k] * w[k]
			s1 += x[k+1] * w[k+1]
			s2 += x[k+2] * w[k+2]
			s3 += x[k+3] * w[k+3]
		}
		s := s0 + s1 + s2 + s3
		for k := n4; k < n; k++ {
			s += x[k] * w[k]
		}
		if math.Float64bits(PackedBlockDot(w, x)) != math.Float64bits(s) {
			t.Fatalf("PackedBlockDot(n=%d) = %v, want %v", n, PackedBlockDot(w, x), s)
		}
	}
}

// TestSerialMatMulPackedNoAlloc extends the serial zero-alloc contract to
// the packed kernel (CI alloc-budget gate runs every *NoAlloc* test here).
func TestSerialMatMulPackedNoAlloc(t *testing.T) {
	prev := Parallelism(1)
	defer Parallelism(prev)
	rng := rand.New(rand.NewSource(59))
	steps, dim := randSchedule(6, 64, 0x15, rng)
	x := randMat(48, dim, rng)
	w := randMat(64, dim, rng)
	bias := make([]float64, 64)
	dst := NewMatrix(48, 64)
	if n := testing.AllocsPerRun(20, func() { MatMulPacked(dst, x, w, bias, steps) }); n > 0 {
		t.Fatalf("serial MatMulPacked allocates %v per op", n)
	}
}

func TestViewRowsInto(t *testing.T) {
	src := NewMatrix(6, 3)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	var hdr Matrix
	v := ViewRowsInto(&hdr, src, 2, 5)
	if v.Rows != 3 || v.Cols != 3 {
		t.Fatalf("view shape %dx%d, want 3x3", v.Rows, v.Cols)
	}
	if math.Float64bits(v.Row(0)[0]) != math.Float64bits(src.Row(2)[0]) ||
		math.Float64bits(v.Row(2)[2]) != math.Float64bits(src.Row(4)[2]) {
		t.Fatalf("view rows not aimed at [2,5)")
	}
}
