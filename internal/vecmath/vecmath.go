// Package vecmath provides the small dense linear-algebra and numerical
// kernels shared by the neural-network engine, the Gaussian mixture models,
// and the statistical estimators in this repository.
//
// Everything operates on float64. Matrices are dense, row-major, and sized at
// construction; the package favours explicit loops over cleverness so the
// hot paths stay allocation-free and easy to audit.
package vecmath

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero resets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// View returns a matrix aliasing the first rows rows of m, without copying.
// Shrinking a pre-allocated buffer to the current batch size this way keeps
// the hot training loops allocation-free while leaving the column width — and
// therefore the layer shape — intact and statically traceable.
func View(m *Matrix, rows int) *Matrix {
	if rows < 0 || rows > m.Rows {
		panic(fmt.Sprintf("vecmath: view of %d rows from a %dx%d matrix", rows, m.Rows, m.Cols))
	}
	return &Matrix{Rows: rows, Cols: m.Cols, Data: m.Data[:rows*m.Cols]}
}

// ViewInto repoints dst at the first rows rows of src, like View, but reuses
// the caller-owned header instead of allocating one. The matmul kernels hand
// large operations to worker goroutines, which makes their operands escape —
// so a fresh header per call would heap-allocate even on the serial path.
// Long-lived callers (nn.Session) allocate headers once and re-aim them here.
//
// iam:noalloc
func ViewInto(dst, src *Matrix, rows int) *Matrix {
	if rows < 0 || rows > src.Rows {
		//lint:ignore noalloc cold shape-violation panic, never taken on the hot path
		panic(fmt.Sprintf("vecmath: view of %d rows from a %dx%d matrix", rows, src.Rows, src.Cols))
	}
	dst.Rows, dst.Cols, dst.Data = rows, src.Cols, src.Data[:rows*src.Cols]
	return dst
}

// ViewRowsInto repoints dst at rows [lo, hi) of src, reusing the
// caller-owned header like ViewInto. It is how the sampler forwards restrict
// the output layer to one column's logit rows: the row slice is a valid
// Matrix because rows are contiguous in the row-major layout.
//
// iam:noalloc
func ViewRowsInto(dst, src *Matrix, lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > src.Rows {
		//lint:ignore noalloc cold shape-violation panic, never taken on the hot path
		panic(fmt.Sprintf("vecmath: view of rows [%d,%d) from a %dx%d matrix", lo, hi, src.Rows, src.Cols))
	}
	dst.Rows, dst.Cols, dst.Data = hi-lo, src.Cols, src.Data[lo*src.Cols:hi*src.Cols]
	return dst
}

// Eps is the default tolerance of ApproxEqual and ApproxZero: loose enough to
// absorb accumulated float64 rounding in the kernels, tight enough to
// distinguish any quantity the estimators care about.
const Eps = 1e-9

// ApproxEqual reports whether a and b agree within Eps, absolutely for small
// magnitudes and relatively for large ones. It is the module's sanctioned
// float comparison: the floateq lint check forbids exact ==/!= on floats
// everywhere else.
func ApproxEqual(a, b float64) bool {
	//lint:ignore floateq identity shortcut also catches equal infinities
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale > 1 {
		return diff <= Eps*scale
	}
	return diff <= Eps
}

// ApproxZero reports whether v is within Eps of zero.
func ApproxZero(v float64) bool {
	return math.Abs(v) <= Eps
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vecmath: dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("vecmath: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum element of x. It panics on empty input.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("vecmath: max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the maximum element of x (first on ties).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("vecmath: argmax of empty slice")
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Softmax writes softmax(logits) into out (which may alias logits). It is
// numerically stable under large logits.
func Softmax(out, logits []float64) {
	if len(out) != len(logits) {
		panic("vecmath: softmax length mismatch")
	}
	m := Max(logits)
	var z float64
	for i, v := range logits {
		d := v - m
		if d > 0 {
			d = 0 // v ≤ max(logits) by construction; pin the exponent range anyway
		}
		e := math.Exp(d)
		out[i] = e
		z += e
	}
	if z <= 0 {
		return // unreachable for finite logits: the max element contributes exp(0) = 1
	}
	inv := 1 / z
	for i := range out {
		out[i] *= inv
	}
}

// LogSumExp returns log(Σ exp(x_i)) computed stably.
func LogSumExp(x []float64) float64 {
	m := Max(x)
	if math.IsInf(m, -1) {
		return math.Inf(-1)
	}
	var s float64
	for _, v := range x {
		d := v - m
		if d > 0 {
			d = 0 // v ≤ max(x) by construction; pin the exponent range anyway
		}
		s += math.Exp(d)
	}
	if s <= 0 {
		return math.Inf(-1) // unreachable: the max element contributes exp(0) = 1
	}
	return m + math.Log(s)
}

// Normalize scales x in place so it sums to 1. If the sum is not positive it
// sets the uniform distribution instead and returns false.
func Normalize(x []float64) bool {
	if len(x) == 0 {
		return false
	}
	s := Sum(x)
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1 / float64(len(x))
		for i := range x {
			x[i] = u
		}
		return false
	}
	Scale(1/s, x)
	return true
}

const (
	invSqrt2   = 0.7071067811865476  // 1/√2
	invSqrt2Pi = 0.39894228040143265 // 1/√(2π)
)

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return invSqrt2Pi / sigma * math.Exp(-0.5*z*z)
}

// NormalLogPDF returns the log-density of N(mu, sigma²) at x.
func NormalLogPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return -0.5*z*z - math.Log(sigma) - 0.9189385332046727 // log √(2π)
}

// NormalCDF returns P(X ≤ x) for X ~ N(mu, sigma²).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * (1 + math.Erf((x-mu)/sigma*invSqrt2))
}

// NormalRangeMass returns P(lo ≤ X ≤ hi) for X ~ N(mu, sigma²). A reversed
// interval yields zero.
func NormalRangeMass(lo, hi, mu, sigma float64) float64 {
	if hi < lo {
		return 0
	}
	m := NormalCDF(hi, mu, sigma) - NormalCDF(lo, mu, sigma)
	if m < 0 {
		return 0
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of sorted, using linear
// interpolation between order statistics. sorted must be ascending and
// non-empty.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("vecmath: quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the population variance of x (0 for len < 2).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	mu := Mean(x)
	var s float64
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return s / float64(len(x))
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
