// Package vecmath provides the small dense linear-algebra and numerical
// kernels shared by the neural-network engine, the Gaussian mixture models,
// and the statistical estimators in this repository.
//
// Everything operates on float64. Matrices are dense, row-major, and sized at
// construction; the package favours explicit loops over cleverness so the
// hot paths stay allocation-free and easy to audit.
package vecmath

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero resets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatMul computes dst = a·b. dst must be a.Rows×b.Cols and distinct from a, b.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("vecmath: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	n4 := dst.Cols - dst.Cols%4
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := 0; j < n4; j += 4 {
				drow[j] += av * brow[j]
				drow[j+1] += av * brow[j+1]
				drow[j+2] += av * brow[j+2]
				drow[j+3] += av * brow[j+3]
			}
			for j := n4; j < dst.Cols; j++ {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMulATB computes dst = aᵀ·b, where a is n×r and b is n×c; dst is r×c.
func MatMulATB(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("vecmath: matmulATB shape mismatch")
	}
	dst.Zero()
	for n := 0; n < a.Rows; n++ {
		arow := a.Row(n)
		brow := b.Row(n)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulABT computes dst = a·bᵀ, where a is n×c and b is m×c; dst is n×m.
// The inner dot product is unrolled four-wide — this is the hottest kernel
// of the neural-network engine.
func MatMulABT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("vecmath: matmulABT shape mismatch")
	}
	c := a.Cols
	c4 := c - c%4
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s0, s1, s2, s3 float64
			for k := 0; k < c4; k += 4 {
				s0 += arow[k] * brow[k]
				s1 += arow[k+1] * brow[k+1]
				s2 += arow[k+2] * brow[k+2]
				s3 += arow[k+3] * brow[k+3]
			}
			s := s0 + s1 + s2 + s3
			for k := c4; k < c; k++ {
				s += arow[k] * brow[k]
			}
			drow[j] = s
		}
	}
}

// View returns a matrix aliasing the first rows rows of m, without copying.
// Shrinking a pre-allocated buffer to the current batch size this way keeps
// the hot training loops allocation-free while leaving the column width — and
// therefore the layer shape — intact and statically traceable.
func View(m *Matrix, rows int) *Matrix {
	if rows < 0 || rows > m.Rows {
		panic(fmt.Sprintf("vecmath: view of %d rows from a %dx%d matrix", rows, m.Rows, m.Cols))
	}
	return &Matrix{Rows: rows, Cols: m.Cols, Data: m.Data[:rows*m.Cols]}
}

// Eps is the default tolerance of ApproxEqual and ApproxZero: loose enough to
// absorb accumulated float64 rounding in the kernels, tight enough to
// distinguish any quantity the estimators care about.
const Eps = 1e-9

// ApproxEqual reports whether a and b agree within Eps, absolutely for small
// magnitudes and relatively for large ones. It is the module's sanctioned
// float comparison: the floateq lint check forbids exact ==/!= on floats
// everywhere else.
func ApproxEqual(a, b float64) bool {
	//lint:ignore floateq identity shortcut also catches equal infinities
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale > 1 {
		return diff <= Eps*scale
	}
	return diff <= Eps
}

// ApproxZero reports whether v is within Eps of zero.
func ApproxZero(v float64) bool {
	return math.Abs(v) <= Eps
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vecmath: dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("vecmath: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum element of x. It panics on empty input.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("vecmath: max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the maximum element of x (first on ties).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("vecmath: argmax of empty slice")
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Softmax writes softmax(logits) into out (which may alias logits). It is
// numerically stable under large logits.
func Softmax(out, logits []float64) {
	if len(out) != len(logits) {
		panic("vecmath: softmax length mismatch")
	}
	m := Max(logits)
	var z float64
	for i, v := range logits {
		e := math.Exp(v - m)
		out[i] = e
		z += e
	}
	inv := 1 / z
	for i := range out {
		out[i] *= inv
	}
}

// LogSumExp returns log(Σ exp(x_i)) computed stably.
func LogSumExp(x []float64) float64 {
	m := Max(x)
	if math.IsInf(m, -1) {
		return math.Inf(-1)
	}
	var s float64
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// Normalize scales x in place so it sums to 1. If the sum is not positive it
// sets the uniform distribution instead and returns false.
func Normalize(x []float64) bool {
	s := Sum(x)
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1 / float64(len(x))
		for i := range x {
			x[i] = u
		}
		return false
	}
	Scale(1/s, x)
	return true
}

const (
	invSqrt2   = 0.7071067811865476  // 1/√2
	invSqrt2Pi = 0.39894228040143265 // 1/√(2π)
)

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return invSqrt2Pi / sigma * math.Exp(-0.5*z*z)
}

// NormalLogPDF returns the log-density of N(mu, sigma²) at x.
func NormalLogPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return -0.5*z*z - math.Log(sigma) - 0.9189385332046727 // log √(2π)
}

// NormalCDF returns P(X ≤ x) for X ~ N(mu, sigma²).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * (1 + math.Erf((x-mu)/sigma*invSqrt2))
}

// NormalRangeMass returns P(lo ≤ X ≤ hi) for X ~ N(mu, sigma²). A reversed
// interval yields zero.
func NormalRangeMass(lo, hi, mu, sigma float64) float64 {
	if hi < lo {
		return 0
	}
	m := NormalCDF(hi, mu, sigma) - NormalCDF(lo, mu, sigma)
	if m < 0 {
		return 0
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of sorted, using linear
// interpolation between order statistics. sorted must be ascending and
// non-empty.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("vecmath: quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the population variance of x (0 for len < 2).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	mu := Mean(x)
	var s float64
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return s / float64(len(x))
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
