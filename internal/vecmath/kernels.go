package vecmath

import "fmt"

// Dense matmul kernels. All three are cache-blocked and register-tiled, and
// parallelize over contiguous output-row blocks via parPlan/fanOut when the
// operation is large enough (see parallel.go). Each output element is
// accumulated by a single chain of additions in exactly the reduction order
// of the straightforward triple loop, so results are bit-identical to the
// naive kernels for every block size and Parallelism setting — the
// equivalence tests in kernels_test.go enforce this property.

// kBlock is the reduction-panel height of MatMul: up to kBlock rows of b are
// reused across a whole row block of a before moving on, keeping the panel
// in cache. Reduction order per output element stays ascending in k because
// panels are visited in ascending order.
const kBlock = 256

// jBlockABT is the width of the b-row panel MatMulABT keeps warm while
// streaming rows of a past it.
const jBlockABT = 64

// MatMul computes dst = a·b. dst must be a.Rows×b.Cols and distinct from a, b.
//
// iam:noalloc
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		//lint:ignore noalloc cold shape-violation panic, never taken on the hot path
		panic(fmt.Sprintf("vecmath: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	nw, chunk, sem := parPlan(a.Rows, a.Cols*dst.Cols)
	if nw <= 1 {
		matMulBlock(dst, a, b, 0, a.Rows)
		return
	}
	//lint:ignore noalloc parallel-path closure, amortized over targetChunkFlops of work per helper
	fanOut(a.Rows, chunk, sem, func(lo, hi int) { matMulBlock(dst, a, b, lo, hi) })
}

// matMulBlock computes rows [lo, hi) of dst = a·b.
func matMulBlock(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
	}
	n4 := dst.Cols - dst.Cols%4
	for k0 := 0; k0 < a.Cols; k0 += kBlock {
		k1 := k0 + kBlock
		if k1 > a.Cols {
			k1 = a.Cols
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for k := k0; k < k1; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j := 0; j < n4; j += 4 {
					drow[j] += av * brow[j]
					drow[j+1] += av * brow[j+1]
					drow[j+2] += av * brow[j+2]
					drow[j+3] += av * brow[j+3]
				}
				for j := n4; j < dst.Cols; j++ {
					drow[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulATB computes dst = aᵀ·b, where a is n×r and b is n×c; dst is r×c.
//
// iam:noalloc
func MatMulATB(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("vecmath: matmulATB shape mismatch")
	}
	nw, chunk, sem := parPlan(dst.Rows, a.Rows*b.Cols)
	if nw <= 1 {
		matMulATBBlock(dst, a, b, 0, dst.Rows)
		return
	}
	//lint:ignore noalloc parallel-path closure, amortized over targetChunkFlops of work per helper
	fanOut(dst.Rows, chunk, sem, func(lo, hi int) { matMulATBBlock(dst, a, b, lo, hi) })
}

// matMulATBBlock computes rows [lo, hi) of dst = aᵀ·b; row i of dst reduces
// over column i of a, so splitting dst rows never splits a reduction.
func matMulATBBlock(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
	}
	c4 := b.Cols - b.Cols%4
	for n := 0; n < a.Rows; n++ {
		arow := a.Row(n)
		brow := b.Row(n)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j := 0; j < c4; j += 4 {
				drow[j] += av * brow[j]
				drow[j+1] += av * brow[j+1]
				drow[j+2] += av * brow[j+2]
				drow[j+3] += av * brow[j+3]
			}
			for j := c4; j < b.Cols; j++ {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMulABT computes dst = a·bᵀ, where a is n×c and b is m×c; dst is n×m.
// The inner dot product is unrolled four-wide with two output columns per
// pass — this is the hottest kernel of the neural-network engine.
//
// iam:noalloc
func MatMulABT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("vecmath: matmulABT shape mismatch")
	}
	nw, chunk, sem := parPlan(a.Rows, a.Cols*b.Rows)
	if nw <= 1 {
		matMulABTBlock(dst, a, b, 0, a.Rows)
		return
	}
	//lint:ignore noalloc parallel-path closure, amortized over targetChunkFlops of work per helper
	fanOut(a.Rows, chunk, sem, func(lo, hi int) { matMulABTBlock(dst, a, b, lo, hi) })
}

// matMulABTBlock computes rows [lo, hi) of dst = a·bᵀ. b is consumed in
// panels of jBlockABT rows that stay cache-resident while the a rows of the
// block stream past. The register tile is 2 a-rows × 2 b-rows × 4 lanes
// (sixteen accumulators): each pass over the reduction produces four output
// elements, so every load of an a or b element feeds two chains. Each
// individual output element still accumulates through the exact four-lane
// chain of the untiled kernel — the tile widens reuse, never reassociates —
// so the naive-reference bit tests hold for every tile path.
func matMulABTBlock(dst, a, b *Matrix, lo, hi int) {
	c := a.Cols
	c4 := c - c%4
	for j0 := 0; j0 < b.Rows; j0 += jBlockABT {
		j1 := j0 + jBlockABT
		if j1 > b.Rows {
			j1 = b.Rows
		}
		i := lo
		for ; i+1 < hi; i += 2 {
			arow := a.Row(i)
			crow := a.Row(i + 1)
			drow := dst.Row(i)
			erow := dst.Row(i + 1)
			j := j0
			for ; j+1 < j1; j += 2 {
				b0 := b.Row(j)
				b1 := b.Row(j + 1)
				var p0, p1, p2, p3 float64
				var q0, q1, q2, q3 float64
				var r0, r1, r2, r3 float64
				var s0, s1, s2, s3 float64
				for k := 0; k < c4; k += 4 {
					a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
					c0, c1, c2, c3 := crow[k], crow[k+1], crow[k+2], crow[k+3]
					w0, w1, w2, w3 := b0[k], b0[k+1], b0[k+2], b0[k+3]
					v0, v1, v2, v3 := b1[k], b1[k+1], b1[k+2], b1[k+3]
					p0 += a0 * w0
					p1 += a1 * w1
					p2 += a2 * w2
					p3 += a3 * w3
					q0 += a0 * v0
					q1 += a1 * v1
					q2 += a2 * v2
					q3 += a3 * v3
					r0 += c0 * w0
					r1 += c1 * w1
					r2 += c2 * w2
					r3 += c3 * w3
					s0 += c0 * v0
					s1 += c1 * v1
					s2 += c2 * v2
					s3 += c3 * v3
				}
				p := p0 + p1 + p2 + p3
				q := q0 + q1 + q2 + q3
				r := r0 + r1 + r2 + r3
				s := s0 + s1 + s2 + s3
				for k := c4; k < c; k++ {
					a0, c0 := arow[k], crow[k]
					p += a0 * b0[k]
					q += a0 * b1[k]
					r += c0 * b0[k]
					s += c0 * b1[k]
				}
				drow[j] = p
				drow[j+1] = q
				erow[j] = r
				erow[j+1] = s
			}
			for ; j < j1; j++ {
				brow := b.Row(j)
				var p0, p1, p2, p3 float64
				var r0, r1, r2, r3 float64
				for k := 0; k < c4; k += 4 {
					w0, w1, w2, w3 := brow[k], brow[k+1], brow[k+2], brow[k+3]
					p0 += arow[k] * w0
					p1 += arow[k+1] * w1
					p2 += arow[k+2] * w2
					p3 += arow[k+3] * w3
					r0 += crow[k] * w0
					r1 += crow[k+1] * w1
					r2 += crow[k+2] * w2
					r3 += crow[k+3] * w3
				}
				p := p0 + p1 + p2 + p3
				r := r0 + r1 + r2 + r3
				for k := c4; k < c; k++ {
					p += arow[k] * brow[k]
					r += crow[k] * brow[k]
				}
				drow[j] = p
				erow[j] = r
			}
		}
		for ; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			j := j0
			for ; j+1 < j1; j += 2 {
				b0 := b.Row(j)
				b1 := b.Row(j + 1)
				var p0, p1, p2, p3 float64
				var q0, q1, q2, q3 float64
				for k := 0; k < c4; k += 4 {
					a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
					p0 += a0 * b0[k]
					p1 += a1 * b0[k+1]
					p2 += a2 * b0[k+2]
					p3 += a3 * b0[k+3]
					q0 += a0 * b1[k]
					q1 += a1 * b1[k+1]
					q2 += a2 * b1[k+2]
					q3 += a3 * b1[k+3]
				}
				p := p0 + p1 + p2 + p3
				q := q0 + q1 + q2 + q3
				for k := c4; k < c; k++ {
					p += arow[k] * b0[k]
					q += arow[k] * b1[k]
				}
				drow[j] = p
				drow[j+1] = q
			}
			for ; j < j1; j++ {
				brow := b.Row(j)
				var s0, s1, s2, s3 float64
				for k := 0; k < c4; k += 4 {
					s0 += arow[k] * brow[k]
					s1 += arow[k+1] * brow[k+1]
					s2 += arow[k+2] * brow[k+2]
					s3 += arow[k+3] * brow[k+3]
				}
				s := s0 + s1 + s2 + s3
				for k := c4; k < c; k++ {
					s += arow[k] * brow[k]
				}
				drow[j] = s
			}
		}
	}
}
