package vecmath

import (
	"runtime"
	"sync"
)

// Intra-operation parallelism for the matmul kernels.
//
// The kernels in kernels.go split their output into contiguous row blocks;
// blocks above a size cutoff are handed to short-lived helper goroutines
// admitted by a package-level semaphore, so the total number of extra
// goroutines across all concurrent matmuls never exceeds the configured
// budget. When no budget is free a block simply runs inline on the caller —
// the pool bounds concurrency, it never queues or blocks.
//
// Block partitioning only splits the *output* rows, never a reduction
// dimension, so every output element is accumulated by exactly one goroutine
// in exactly the order the serial kernel uses: results are bit-identical for
// every Parallelism setting.

var parMu sync.Mutex

// parMax is the worker budget: the maximum number of goroutines (including
// the caller) that may cooperate on matmuls at any instant.
var parMax int // iam:guardedby parMu

// parSem admits helper goroutines; capacity parMax-1 (nil when parMax <= 1).
// Spawn sites capture the channel value they acquired from, so swapping it
// under parMu while workers are in flight is safe.
var parSem chan struct{} // iam:guardedby parMu

func init() {
	Parallelism(runtime.GOMAXPROCS(0))
}

// Parallelism sets the matmul worker budget to n (n ≥ 1; 1 disables helper
// goroutines entirely, making every kernel run serially on the caller) and
// returns the previous budget. n ≤ 0 leaves the budget unchanged and just
// reports it. Results are bit-identical under every setting; the knob trades
// single-operation latency against oversubscription when callers already
// parallelize above the kernels (e.g. the per-query estimate workers).
func Parallelism(n int) int {
	parMu.Lock()
	defer parMu.Unlock()
	prev := parMax
	if n >= 1 {
		parMax = n
		if n > 1 {
			parSem = make(chan struct{}, n-1)
		} else {
			parSem = nil
		}
	}
	return prev
}

// targetChunkFlops is the approximate number of multiply-adds one helper
// goroutine should amortize its spawn cost over (~10-20µs of work).
const targetChunkFlops = 1 << 16

// parPlan decides how to split n output rows whose per-row cost is rowWork
// multiply-adds: it returns the number of workers (1 = run serially, without
// allocating) and the chunk size in rows. The serial decision is taken
// before any closure is formed so the single-threaded hot path stays
// allocation-free.
func parPlan(n, rowWork int) (nw, chunk int, sem chan struct{}) {
	parMu.Lock()
	maxW := parMax
	sem = parSem
	parMu.Unlock()
	if maxW <= 1 || sem == nil || n <= 1 {
		return 1, n, nil
	}
	minRows := 1
	if rowWork > 0 {
		minRows = targetChunkFlops / rowWork
		if minRows < 1 {
			minRows = 1
		}
	}
	nw = n / minRows
	if nw > maxW {
		nw = maxW
	}
	if nw <= 1 {
		return 1, n, nil
	}
	chunk = (n + nw - 1) / nw
	return nw, chunk, sem
}

// Do runs task(0) … task(n−1), handing all but the last task to helper
// goroutines when the shared worker budget has capacity and running the rest
// inline on the caller. It returns once every task has completed. Tasks are
// never split or reordered relative to their own work, so as long as each
// task touches disjoint state (the caller's contract — e.g. one network
// layer's parameters per task), results are bit-identical for every
// Parallelism setting. With a budget of 1 the loop runs inline without
// forming a single closure, keeping serial callers allocation-free.
//
// iam:noalloc
func Do(n int, task func(i int)) {
	parMu.Lock()
	maxW := parMax
	sem := parSem
	parMu.Unlock()
	if maxW <= 1 || sem == nil || n <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	//lint:ignore noalloc wg is moved to the heap by the helper captures, but only the parallel path reaches this decl; the serial steady state returned above
	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			//lint:ignore noalloc parallel-path spawn, only reached when the worker budget exceeds 1; the serial steady state runs the inline loop above
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				task(i)
			}(i)
		default:
			// No budget free: run this task on the caller.
			task(i)
		}
	}
	task(n - 1)
	wg.Wait()
}

// fanOut runs body over [0, n) in chunks, handing all but the last chunk to
// helper goroutines when the semaphore has budget and running the rest
// inline. Only reached on the parallel path, so the closure allocation is
// paid exclusively by large operations.
func fanOut(n, chunk int, sem chan struct{}, body func(lo, hi int)) {
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if hi < n {
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					defer func() { <-sem }()
					body(lo, hi)
				}(lo, hi)
				continue
			default:
				// No budget free: run this chunk on the caller.
			}
		}
		body(lo, hi)
	}
	wg.Wait()
}
