package vecmath

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSymEigenvaluesDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 2)
	a.Set(1, 1, -1)
	a.Set(2, 2, 5)
	ev := SymEigenvalues(a)
	sort.Float64s(ev)
	want := []float64{-1, 2, 5}
	for i, w := range want {
		if !almostEq(ev[i], w, 1e-10) {
			t.Fatalf("ev = %v, want %v", ev, want)
		}
	}
}

func TestSymEigenvaluesKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{2, 1, 1, 2})
	ev := SymEigenvalues(a)
	sort.Float64s(ev)
	if !almostEq(ev[0], 1, 1e-10) || !almostEq(ev[1], 3, 1e-10) {
		t.Fatalf("ev = %v, want [1 3]", ev)
	}
}

func TestSymEigenvaluesTraceAndFrobenius(t *testing.T) {
	// Eigenvalues of a random symmetric matrix must preserve the trace and
	// the Frobenius norm (sum of squares).
	rng := rand.New(rand.NewSource(42))
	n := 6
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	var trace, frob float64
	for i := 0; i < n; i++ {
		trace += a.At(i, i)
		for j := 0; j < n; j++ {
			frob += a.At(i, j) * a.At(i, j)
		}
	}
	ev := SymEigenvalues(a)
	var evSum, evSq float64
	for _, v := range ev {
		evSum += v
		evSq += v * v
	}
	if !almostEq(trace, evSum, 1e-8) {
		t.Fatalf("trace %v != Σλ %v", trace, evSum)
	}
	if !almostEq(frob, evSq, 1e-8) {
		t.Fatalf("‖A‖²_F %v != Σλ² %v", frob, evSq)
	}
}

func TestSymEigenvaluesCorrelationMatrixBounds(t *testing.T) {
	// A perfectly correlated 3-column correlation matrix (all ones) has
	// eigenvalues {3, 0, 0}.
	a := NewMatrix(3, 3)
	for i := range a.Data {
		a.Data[i] = 1
	}
	ev := SymEigenvalues(a)
	sort.Float64s(ev)
	if !almostEq(ev[2], 3, 1e-9) || math.Abs(ev[0]) > 1e-9 || math.Abs(ev[1]) > 1e-9 {
		t.Fatalf("ev = %v, want [0 0 3]", ev)
	}
}
