package vecmath

// Packed masked-linear kernel. The sampler's first ResMADE layer multiplies
// a row of concatenated per-column embeddings by a degree-masked weight
// matrix; for a concrete query most columns are wildcards whose input is the
// constant MASK embedding. Instead of multiplying those constants (or the
// mask's structural zeros) every forward, the caller packs the live columns'
// weight blocks into a contiguous panel and precomputes each wildcard
// column's contribution once per (plan, output) as a Part vector. The kernel
// then walks the column schedule in order, spending FLOPs only on live
// blocks and a single add per wildcard column.
//
// Reduction order is part of the contract: every output element is
// bias + step₀ + step₁ + … with the steps in schedule (column) order, where
// a live step contributes PackedBlockDot over its block and a wildcard step
// contributes its precomputed Part. Because Parts are themselves computed
// with PackedBlockDot over the same weight blocks, a packed forward is
// bit-identical to an all-live packed forward that is fed the MASK
// embeddings as ordinary inputs — the property the wildcard-lattice tests
// in internal/nn gate on.

// PackedStep is one column of the packed schedule. A live column has
// Width > 0 and names its block [Off, Off+Width) in both the packed input
// row and the packed weight rows (the packed layout makes the two offsets
// coincide). A wildcard column has Width == 0 and carries Part, its
// precomputed per-output contribution.
type PackedStep struct {
	Off, Width int
	Part       []float64
}

// PackedBlockDot is the canonical block reduction shared by the packed
// kernel, the Part precomputation, and the naive test references: four
// accumulator lanes over k+=4, combined left-to-right, then a scalar tail.
// It matches the per-(output, b-row) chain of matMulABTBlock exactly.
//
// iam:noalloc
func PackedBlockDot(w, x []float64) float64 {
	n := len(x)
	n4 := n - n%4
	var s0, s1, s2, s3 float64
	for k := 0; k < n4; k += 4 {
		s0 += x[k] * w[k]
		s1 += x[k+1] * w[k+1]
		s2 += x[k+2] * w[k+2]
		s3 += x[k+3] * w[k+3]
	}
	s := s0 + s1 + s2 + s3
	for k := n4; k < n; k++ {
		s += x[k] * w[k]
	}
	return s
}

// MatMulPacked computes dst[r][o] = bias[o] + Σ_steps contribution(r, o),
// with x holding the packed input rows (x.Cols == w.Cols == the packed
// dimension, which may be 0 when every column is a wildcard) and w the
// packed weight panel (one row per output). dst must be x.Rows×w.Rows.
//
// iam:noalloc
func MatMulPacked(dst, x, w *Matrix, bias []float64, steps []PackedStep) {
	if x.Cols != w.Cols || dst.Rows != x.Rows || dst.Cols != w.Rows || len(bias) != w.Rows {
		panic("vecmath: matmulPacked shape mismatch")
	}
	for _, st := range steps {
		if st.Width > 0 {
			if st.Off < 0 || st.Off+st.Width > w.Cols {
				panic("vecmath: packed step outside panel")
			}
		} else if len(st.Part) != w.Rows {
			panic("vecmath: packed step part length mismatch")
		}
	}
	nw, chunk, sem := parPlan(x.Rows, w.Cols*w.Rows+w.Rows)
	if nw <= 1 {
		matMulPackedBlock(dst, x, w, bias, steps, 0, x.Rows)
		return
	}
	//lint:ignore noalloc parallel-path closure, amortized over targetChunkFlops of work per helper
	fanOut(x.Rows, chunk, sem, func(lo, hi int) { matMulPackedBlock(dst, x, w, bias, steps, lo, hi) })
}

// matMulPackedBlock computes rows [lo, hi) of the packed forward. Two
// outputs are produced per pass so each packed input element feeds two
// four-lane accumulator chains, mirroring the MatMulABT micro-kernel.
func matMulPackedBlock(dst, x, w *Matrix, bias []float64, steps []PackedStep, lo, hi int) {
	out := w.Rows
	for r := lo; r < hi; r++ {
		xrow := x.Row(r)
		drow := dst.Row(r)
		o := 0
		for ; o+1 < out; o += 2 {
			w0 := w.Row(o)
			w1 := w.Row(o + 1)
			p := bias[o]
			q := bias[o+1]
			for si := range steps {
				if steps[si].Width == 0 {
					part := steps[si].Part
					p += part[o]
					q += part[o+1]
					continue
				}
				k0 := steps[si].Off
				k1 := k0 + steps[si].Width
				k4 := k1 - steps[si].Width%4
				var p0, p1, p2, p3 float64
				var q0, q1, q2, q3 float64
				for k := k0; k < k4; k += 4 {
					x0, x1, x2, x3 := xrow[k], xrow[k+1], xrow[k+2], xrow[k+3]
					p0 += x0 * w0[k]
					p1 += x1 * w0[k+1]
					p2 += x2 * w0[k+2]
					p3 += x3 * w0[k+3]
					q0 += x0 * w1[k]
					q1 += x1 * w1[k+1]
					q2 += x2 * w1[k+2]
					q3 += x3 * w1[k+3]
				}
				ps := p0 + p1 + p2 + p3
				qs := q0 + q1 + q2 + q3
				for k := k4; k < k1; k++ {
					ps += xrow[k] * w0[k]
					qs += xrow[k] * w1[k]
				}
				p += ps
				q += qs
			}
			drow[o] = p
			drow[o+1] = q
		}
		for ; o < out; o++ {
			wo := w.Row(o)
			p := bias[o]
			for si := range steps {
				if steps[si].Width == 0 {
					p += steps[si].Part[o]
					continue
				}
				k0 := steps[si].Off
				k1 := k0 + steps[si].Width
				p += PackedBlockDot(wo[k0:k1], xrow[k0:k1])
			}
			drow[o] = p
		}
	}
}
