package vecmath

import "math"

// SymEigenvalues returns the eigenvalues of the symmetric matrix a using the
// cyclic Jacobi rotation method. a must be square and symmetric; it is not
// modified. The returned eigenvalues are in no particular order.
//
// Jacobi iteration is O(n³) per sweep but our matrices are tiny (one row per
// dataset column), so simplicity wins over LAPACK-grade sophistication.
func SymEigenvalues(a *Matrix) []float64 {
	if a.Rows != a.Cols {
		panic("vecmath: SymEigenvalues requires a square matrix")
	}
	n := a.Rows
	w := a.Clone()
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Sum of squares of off-diagonal elements.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := w.At(i, j)
				off += v * v
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation G(p,q,θ)ᵀ · W · G(p,q,θ).
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
			}
		}
	}
	ev := make([]float64, n)
	for i := 0; i < n; i++ {
		ev[i] = w.At(i, i)
	}
	return ev
}
