package vecmath

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestDoRunsEveryTaskOnce: Do must execute each task exactly once under every
// worker budget, including budgets larger than the task count.
func TestDoRunsEveryTaskOnce(t *testing.T) {
	for _, budget := range []int{1, 2, 8, runtime.GOMAXPROCS(0) + 3} {
		prev := Parallelism(budget)
		hits := make([]int32, 37)
		Do(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
		Parallelism(prev)
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("budget %d: task %d ran %d times", budget, i, h)
			}
		}
	}
	// n = 0 and n = 1 edge cases must not deadlock or skip.
	Do(0, func(int) { t.Fatal("task ran for n = 0") })
	ran := false
	Do(1, func(int) { ran = true })
	if !ran {
		t.Fatal("task skipped for n = 1")
	}
}

// TestDoSerialDispatchNoAlloc pins the iam:noalloc contract on Do's
// steady-state dispatch: with a worker budget of 1 the inline loop must not
// heap-allocate — no WaitGroup, no closure, nothing. The task closure is
// formed once outside the measured region, the way callers hold theirs
// across batches.
func TestDoSerialDispatchNoAlloc(t *testing.T) {
	prev := Parallelism(1)
	defer Parallelism(prev)
	var sink int64
	task := func(i int) { sink += int64(i) }
	if n := testing.AllocsPerRun(20, func() { Do(64, task) }); n > 0 {
		t.Fatalf("serial Do(64) allocates %v per dispatch, want 0", n)
	}
	if sink == 0 {
		t.Fatal("tasks did not run")
	}
}

// TestDoDisjointTasksBitIdentical: tasks that each own a disjoint slice
// region must produce bit-identical results for every budget, since Do never
// splits a task's own (serial) accumulation.
func TestDoDisjointTasksBitIdentical(t *testing.T) {
	const rows, cols = 16, 257
	run := func(budget int) []float64 {
		prev := Parallelism(budget)
		defer Parallelism(prev)
		out := make([]float64, rows*cols)
		Do(rows, func(r int) {
			acc := 0.0
			for c := 0; c < cols; c++ {
				acc += 1 / float64(r*cols+c+1)
				out[r*cols+c] = acc
			}
		})
		return out
	}
	want := run(1)
	for _, budget := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(budget)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("budget %d: element %d = %v, want %v", budget, i, got[i], want[i])
			}
		}
	}
}
