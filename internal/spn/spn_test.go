package spn

import (
	"math"
	"testing"

	"iam/internal/dataset"
	"iam/internal/estimator"
	"iam/internal/query"
	"iam/internal/testutil"
)

func TestSPNWorkloadAccuracy(t *testing.T) {
	tb := dataset.SynthWISDM(8000, 1)
	e, err := New(tb, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 100, Seed: 3})
	ev, err := estimator.Evaluate(e, w, tb.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Summary.Median > 2.5 {
		t.Fatalf("median q-error %v: %v", ev.Summary.Median, ev.Summary)
	}
}

func TestProductSplitOnIndependentColumns(t *testing.T) {
	// Fully independent columns → the root should become a product node.
	n := 5000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64((i * 13) % 101)
		b[i] = float64((i * 31) % 97)
	}
	tb := &dataset.Table{Name: "ind", Columns: []*dataset.Column{
		{Name: "a", Kind: dataset.Continuous, Floats: a},
		{Name: "b", Kind: dataset.Continuous, Floats: b},
	}}
	e, err := New(tb, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !e.root.isProd {
		t.Fatal("independent columns did not yield a product root")
	}
}

func TestSumSplitOnClusteredRows(t *testing.T) {
	// Two clusters with strong within-cluster dependence: root should be a
	// sum node (row split), not a blanket independence assumption.
	n := 4000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			a[i] = 10 + float64(i%50)*0.01
			b[i] = 10 + a[i] - 10
		} else {
			a[i] = -10 - float64(i%50)*0.01
			b[i] = -10 + (a[i] + 10)
		}
	}
	tb := &dataset.Table{Name: "clust", Columns: []*dataset.Column{
		{Name: "a", Kind: dataset.Continuous, Floats: a},
		{Name: "b", Kind: dataset.Continuous, Floats: b},
	}}
	e, err := New(tb, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if e.root.isProd || e.root.leafHist != nil {
		t.Fatal("clustered dependent data did not yield a sum root")
	}
	// The clusters make the conjunction a ≤ 0 AND b ≤ 0 exactly 0.5.
	q := query.NewQuery(tb)
	if err := q.AddPredicate(query.Predicate{Col: "a", Op: query.Le, Value: 0}); err != nil {
		t.Fatal(err)
	}
	if err := q.AddPredicate(query.Predicate{Col: "b", Op: query.Le, Value: 0}); err != nil {
		t.Fatal(err)
	}
	got, err := e.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("cluster conjunction estimate %v, want ≈0.5", got)
	}
}

func TestUnconstrainedIsOne(t *testing.T) {
	tb := dataset.SynthHIGGS(3000, 6)
	e, err := New(tb, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Estimate(query.NewQuery(tb))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 0.02 {
		t.Fatalf("unconstrained estimate %v", got)
	}
}

func TestLeafMass(t *testing.T) {
	lh := &leafHist{
		lo:   []float64{0, 10},
		hi:   []float64{10, 20},
		mass: []float64{0.5, 0.5},
	}
	r := &query.Interval{Lo: 5, Hi: 15, LoInc: true, HiInc: true}
	if got := leafMass(lh, r); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("leaf mass %v, want 0.5", got)
	}
	if got := leafMass(lh, nil); got != 1 {
		t.Fatalf("nil range mass %v", got)
	}
	cat := &leafHist{identity: true, freqs: []float64{0.2, 0.3, 0.5}}
	r2 := &query.Interval{Lo: 1, Hi: 2, LoInc: true, HiInc: true}
	if got := leafMass(cat, r2); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("categorical mass %v, want 0.8", got)
	}
}

func TestSizeBytesAndWrongTable(t *testing.T) {
	tb := dataset.SynthTWI(1500, 8)
	e, err := New(tb, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if e.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
	other := dataset.SynthTWI(100, 10)
	if _, err := e.Estimate(query.NewQuery(other)); err == nil {
		t.Fatal("expected wrong-table error")
	}
}
