package spn

import (
	"math"
	"testing"

	"iam/internal/dataset"
	"iam/internal/query"
	"iam/internal/testutil"
)

// TestExpectationMatchesBruteForce checks E[g(X)·1(X∈q)] against a direct
// data-side computation on categorical data, where the SPN's leaves are
// exact frequency tables.
func TestExpectationMatchesBruteForce(t *testing.T) {
	n := 4000
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = i % 5
		b[i] = (i * 7) % 3 // independent of a
	}
	tb := &dataset.Table{Name: "t", Columns: []*dataset.Column{
		{Name: "a", Kind: dataset.Categorical, Ints: a, Card: 5},
		{Name: "b", Kind: dataset.Categorical, Ints: b, Card: 3},
	}}
	e, err := New(tb, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := query.NewQuery(tb)
	if err := q.AddPredicate(query.Predicate{Col: "a", Op: query.Le, Value: 2}); err != nil {
		t.Fatal(err)
	}
	g := map[int]func(float64) float64{
		1: func(v float64) float64 { return 1 / (v + 1) }, // over column b
	}
	got, err := e.EstimateExpectation(q, g)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < n; i++ {
		if a[i] <= 2 {
			want += 1 / (float64(b[i]) + 1)
		}
	}
	want /= float64(n)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("expectation %v vs data %v", got, want)
	}
}

// TestExpectationIdentityReducesToEstimate: with no transforms the
// expectation equals the plain probability estimate.
func TestExpectationIdentityReducesToEstimate(t *testing.T) {
	tb := dataset.SynthWISDM(3000, 2)
	e, err := New(tb, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 20, Seed: 4, SkipExec: true})
	for i, q := range w.Queries {
		a, err := e.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.EstimateExpectation(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("query %d: estimate %v vs identity expectation %v", i, a, b)
		}
	}
}
