// Package spn implements the DeepDB baseline (paper §6.1.2): a sum-product
// network learned from data. Structure learning alternates column splits
// (groups of mutually dependent columns found by normalized mutual
// information → Product nodes, i.e. an independence assumption across
// groups) and row splits (2-means clustering → Sum nodes); leaves are
// per-column histograms. Range queries are evaluated bottom-up in one pass.
package spn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"iam/internal/dataset"
	"iam/internal/query"
	"iam/internal/vecmath"
)

// Config controls structure learning.
type Config struct {
	// MinRows stops row splitting below this cluster size (default 400).
	MinRows int
	// DepThreshold is the normalized-MI threshold above which two columns
	// are considered dependent (default 0.08).
	DepThreshold float64
	// LeafBins is the histogram resolution at the leaves (default 64).
	LeafBins int
	Seed     int64
}

func (c *Config) fillDefaults() {
	if c.MinRows <= 0 {
		c.MinRows = 400
	}
	if c.DepThreshold <= 0 {
		c.DepThreshold = 0.08
	}
	if c.LeafBins <= 0 {
		c.LeafBins = 64
	}
}

// node is an SPN node: exactly one of sum/product/leaf is set.
type node struct {
	// Sum node.
	weights  []float64
	children []*node
	// Product node reuses children with per-child column scopes.
	scopes [][]int
	isProd bool
	// Leaf.
	leafCol  int
	leafHist *leafHist
}

// leafHist is a per-column histogram leaf.
type leafHist struct {
	identity bool // categorical: direct frequency table
	freqs    []float64
	lo, hi   []float64 // bin value bounds (non-identity)
	mass     []float64 // bin masses
}

// Estimator is the learned SPN.
type Estimator struct {
	table *dataset.Table
	root  *node
	cfg   Config
}

// New learns an SPN over t.
func New(t *dataset.Table, cfg Config) (*Estimator, error) {
	cfg.fillDefaults()
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("spn: empty table")
	}
	e := &Estimator{table: t, cfg: cfg}
	rows := make([]int, t.NumRows())
	for i := range rows {
		rows[i] = i
	}
	cols := make([]int, t.NumCols())
	for j := range cols {
		cols[j] = j
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e.root = e.learn(rows, cols, rng, 0)
	return e, nil
}

// value returns the raw value of (row, col) with categorical codes as
// floats.
func (e *Estimator) value(ri, ci int) float64 {
	c := e.table.Columns[ci]
	if c.Kind == dataset.Categorical {
		return float64(c.Ints[ri])
	}
	return c.Floats[ri]
}

// learn recursively builds the SPN for the given row/column scope.
func (e *Estimator) learn(rows, cols []int, rng *rand.Rand, depth int) *node {
	if len(cols) == 1 {
		return e.makeLeaf(rows, cols[0])
	}
	if len(rows) < e.cfg.MinRows || depth > 20 {
		return e.productOfLeaves(rows, cols)
	}
	// Try a column split by dependence clustering.
	groups := e.dependenceGroups(rows, cols)
	if len(groups) > 1 {
		n := &node{isProd: true}
		for _, g := range groups {
			n.children = append(n.children, e.learn(rows, g, rng, depth+1))
			n.scopes = append(n.scopes, g)
		}
		return n
	}
	// Row split by 2-means.
	left, right := e.twoMeans(rows, cols, rng)
	if len(left) == 0 || len(right) == 0 {
		return e.productOfLeaves(rows, cols)
	}
	total := float64(len(rows))
	return &node{
		weights:  []float64{float64(len(left)) / total, float64(len(right)) / total},
		children: []*node{e.learn(left, cols, rng, depth+1), e.learn(right, cols, rng, depth+1)},
		scopes:   [][]int{cols, cols},
	}
}

func (e *Estimator) productOfLeaves(rows, cols []int) *node {
	n := &node{isProd: true}
	for _, c := range cols {
		n.children = append(n.children, e.makeLeaf(rows, c))
		n.scopes = append(n.scopes, []int{c})
	}
	return n
}

// makeLeaf builds a histogram leaf for one column over the given rows.
func (e *Estimator) makeLeaf(rows []int, ci int) *node {
	c := e.table.Columns[ci]
	lh := &leafHist{}
	if c.Kind == dataset.Categorical {
		lh.identity = true
		lh.freqs = make([]float64, c.Card)
		for _, r := range rows {
			lh.freqs[c.Ints[r]]++
		}
		vecmath.Normalize(lh.freqs)
		return &node{leafCol: ci, leafHist: lh}
	}
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = c.Floats[r]
	}
	sort.Float64s(vals)
	nb := e.cfg.LeafBins
	if nb > len(vals) {
		nb = len(vals)
	}
	if nb < 1 {
		nb = 1
	}
	lh.lo = make([]float64, nb)
	lh.hi = make([]float64, nb)
	lh.mass = make([]float64, nb)
	for b := 0; b < nb; b++ {
		loPos := b * len(vals) / nb
		hiPos := (b+1)*len(vals)/nb - 1
		lh.lo[b] = vals[loPos]
		lh.hi[b] = vals[hiPos]
		lh.mass[b] = float64(hiPos - loPos + 1)
	}
	vecmath.Normalize(lh.mass)
	return &node{leafCol: ci, leafHist: lh}
}

// dependenceGroups partitions cols into connected components of the
// "dependent" graph (normalized MI above threshold) computed on a row
// subsample.
func (e *Estimator) dependenceGroups(rows, cols []int) [][]int {
	sample := rows
	if len(sample) > 2000 {
		sample = rows[:2000]
	}
	const bins = 16
	// Bin each column on the sample.
	codes := make([][]int, len(cols))
	for k, ci := range cols {
		vals := make([]float64, len(sample))
		for i, r := range sample {
			vals[i] = e.value(r, ci)
		}
		codes[k] = binCodes(vals, bins)
	}
	// Union-find over dependence edges.
	parent := make([]int, len(cols))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			if normalizedMI(codes[i], codes[j], bins) > e.cfg.DepThreshold {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]int{}
	for k, ci := range cols {
		r := find(k)
		groups[r] = append(groups[r], ci)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// binCodes rank-bins values into at most `bins` codes.
func binCodes(vals []float64, bins int) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	out := make([]int, len(vals))
	for rank, i := range idx {
		out[i] = rank * bins / len(vals)
		if out[i] >= bins {
			out[i] = bins - 1
		}
	}
	return out
}

// normalizedMI is MI(x, y)/√(H(x)·H(y)) ∈ [0, 1].
func normalizedMI(xs, ys []int, bins int) float64 {
	n := len(xs)
	joint := make([]float64, bins*bins)
	px := make([]float64, bins)
	py := make([]float64, bins)
	for i := 0; i < n; i++ {
		joint[xs[i]*bins+ys[i]]++
		px[xs[i]]++
		py[ys[i]]++
	}
	inv := 1 / float64(n)
	var mi, hx, hy float64
	for _, c := range px {
		if c > 0 {
			p := c * inv
			hx -= p * math.Log(p)
		}
	}
	for _, c := range py {
		if c > 0 {
			p := c * inv
			hy -= p * math.Log(p)
		}
	}
	for x := 0; x < bins; x++ {
		for y := 0; y < bins; y++ {
			c := joint[x*bins+y]
			if c <= 0 {
				continue
			}
			p := c * inv
			mi += p * math.Log(p/(px[x]*inv*py[y]*inv))
		}
	}
	if hx <= 0 || hy <= 0 {
		return 0
	}
	return mi / math.Sqrt(hx*hy)
}

// twoMeans clusters rows into two groups on normalized column values.
func (e *Estimator) twoMeans(rows, cols []int, rng *rand.Rand) (left, right []int) {
	d := len(cols)
	// Normalization stats per column.
	lo := make([]float64, d)
	span := make([]float64, d)
	for k, ci := range cols {
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, r := range rows {
			v := e.value(r, ci)
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		lo[k] = mn
		span[k] = math.Max(mx-mn, 1e-9)
	}
	feat := func(r int, k int) float64 {
		return (e.value(r, cols[k]) - lo[k]) / span[k]
	}
	// Init centroids from two random rows.
	c0 := make([]float64, d)
	c1 := make([]float64, d)
	r0 := rows[rng.Intn(len(rows))]
	r1 := rows[rng.Intn(len(rows))]
	for k := 0; k < d; k++ {
		c0[k] = feat(r0, k)
		c1[k] = feat(r1, k)
	}
	assign := make([]bool, len(rows)) // true → cluster 1
	for iter := 0; iter < 8; iter++ {
		var n0, n1 float64
		s0 := make([]float64, d)
		s1 := make([]float64, d)
		for i, r := range rows {
			var d0, d1 float64
			for k := 0; k < d; k++ {
				f := feat(r, k)
				d0 += (f - c0[k]) * (f - c0[k])
				d1 += (f - c1[k]) * (f - c1[k])
			}
			assign[i] = d1 < d0
			if assign[i] {
				n1++
				for k := 0; k < d; k++ {
					s1[k] += feat(r, k)
				}
			} else {
				n0++
				for k := 0; k < d; k++ {
					s0[k] += feat(r, k)
				}
			}
		}
		if n0 == 0 || n1 == 0 {
			break
		}
		for k := 0; k < d; k++ {
			c0[k] = s0[k] / n0
			c1[k] = s1[k] / n1
		}
	}
	for i, r := range rows {
		if assign[i] {
			right = append(right, r)
		} else {
			left = append(left, r)
		}
	}
	return left, right
}

// Name implements estimator.Estimator.
func (e *Estimator) Name() string { return "DeepDB" }

// SizeBytes reports the SPN parameter storage.
func (e *Estimator) SizeBytes() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n.leafHist != nil {
			lh := n.leafHist
			return 8 * (len(lh.freqs) + len(lh.lo) + len(lh.hi) + len(lh.mass))
		}
		s := 8 * len(n.weights)
		for _, c := range n.children {
			s += walk(c)
		}
		return s
	}
	return walk(e.root)
}

// Estimate evaluates the SPN bottom-up on the query box.
func (e *Estimator) Estimate(q *query.Query) (float64, error) {
	if q.Table != e.table {
		return 0, fmt.Errorf("spn: query targets table %q", q.Table.Name)
	}
	return vecmath.Clamp(e.eval(e.root, q), 0, 1), nil
}

func (e *Estimator) eval(n *node, q *query.Query) float64 {
	if n.leafHist != nil {
		return leafMass(n.leafHist, q.Ranges[n.leafCol])
	}
	if n.isProd {
		p := 1.0
		for _, c := range n.children {
			p *= e.eval(c, q)
			if p == 0 {
				return 0
			}
		}
		return p
	}
	var s float64
	for i, c := range n.children {
		s += n.weights[i] * e.eval(c, q)
	}
	return s
}

// EstimateExpectation computes E[Π_j g_j(X_j) · 1(X ∈ q)] under the SPN,
// where g maps column indices to per-value transforms (identity for absent
// columns). DeepDB uses this to evaluate fanout-corrected join estimates:
// g[fanoutCol] = 1/value. Transforms on product/sum nodes distribute because
// product-node children have disjoint scopes.
func (e *Estimator) EstimateExpectation(q *query.Query, g map[int]func(float64) float64) (float64, error) {
	if q.Table != e.table {
		return 0, fmt.Errorf("spn: query targets table %q", q.Table.Name)
	}
	return e.evalExpect(e.root, q, g), nil
}

func (e *Estimator) evalExpect(n *node, q *query.Query, g map[int]func(float64) float64) float64 {
	if n.leafHist != nil {
		return leafExpect(n.leafHist, q.Ranges[n.leafCol], g[n.leafCol])
	}
	if n.isProd {
		p := 1.0
		for _, c := range n.children {
			p *= e.evalExpect(c, q, g)
			if p == 0 {
				return 0
			}
		}
		return p
	}
	var s float64
	for i, c := range n.children {
		s += n.weights[i] * e.evalExpect(c, q, g)
	}
	return s
}

// leafExpect is leafMass with a per-value transform applied (bins use their
// midpoint value as the representative for g).
func leafExpect(lh *leafHist, r *query.Interval, g func(float64) float64) float64 {
	if g == nil {
		return leafMass(lh, r)
	}
	if lh.identity {
		var s float64
		for code, f := range lh.freqs {
			v := float64(code)
			if r == nil || r.Contains(v) {
				s += f * g(v)
			}
		}
		return s
	}
	var s float64
	for b := range lh.mass {
		lo, hi := lh.lo[b], lh.hi[b]
		mid := (lo + hi) / 2
		if r == nil {
			s += lh.mass[b] * g(mid)
			continue
		}
		if hi < r.Lo || lo > r.Hi {
			continue
		}
		width := hi - lo
		if width <= 0 {
			if r.Contains(lo) {
				s += lh.mass[b] * g(lo)
			}
			continue
		}
		a := math.Max(lo, r.Lo)
		bb := math.Min(hi, r.Hi)
		if bb > a {
			s += lh.mass[b] * (bb - a) / width * g(mid)
		}
	}
	return s
}

// leafMass returns the histogram mass admitted by r (nil → 1).
func leafMass(lh *leafHist, r *query.Interval) float64 {
	if r == nil {
		return 1
	}
	if lh.identity {
		var s float64
		for code, f := range lh.freqs {
			if r.Contains(float64(code)) {
				s += f
			}
		}
		return s
	}
	var s float64
	for b := range lh.mass {
		lo, hi := lh.lo[b], lh.hi[b]
		if hi < r.Lo || lo > r.Hi {
			continue
		}
		width := hi - lo
		if width <= 0 {
			if r.Contains(lo) {
				s += lh.mass[b]
			}
			continue
		}
		a := math.Max(lo, r.Lo)
		bb := math.Min(hi, r.Hi)
		if bb > a {
			s += lh.mass[b] * (bb - a) / width
		}
	}
	return s
}
