package bench

import (
	"fmt"
	"math"
	"math/rand"

	"iam/internal/estimator"
	"iam/internal/gmm"
	"iam/internal/query"
)

// GMMSampleSweep reproduces the "Impact of GMM Sample Number" experiment
// (§6 bullet list): accuracy and estimation time of IAM as the number of
// Monte-Carlo samples S drawn per Gaussian component varies. Small S makes
// P̂_GMM(R) noisy (hurting tails); large S only costs preprocessing, since
// range masses are two binary searches per component at query time.
func (s *Suite) GMMSampleSweep() (*Report, error) {
	r := &Report{
		Title:  "Impact of GMM sample number S on TWI (IAM)",
		Header: []string{"S", "Mean", "Median", "95th", "Max", "Est.time(ms)"},
	}
	t, err := s.Table("twi")
	if err != nil {
		return nil, err
	}
	w, err := s.Workload("twi")
	if err != nil {
		return nil, err
	}
	for _, S := range []int{100, 1000, 10000, 50000} {
		cfg := s.iamCfg(s.Cfg.Seed + 1700)
		cfg.GMMSamples = S
		m, err := s.trainIAM(t, cfg)
		if err != nil {
			return nil, err
		}
		ev, err := estimator.Evaluate(m, w, t.NumRows())
		if err != nil {
			return nil, err
		}
		sum := ev.Summary
		r.Addf(S, sum.Mean, sum.Median, sum.P95, sum.Max,
			float64(ev.AvgLatency.Microseconds())/1000)
	}
	return r, nil
}

// AblationGMMOnly evaluates the §4.2 design alternative the paper rejects:
// one multivariate (diagonal-covariance) mixture over all attributes, used
// directly as the estimator. Its within-component independence assumption
// loses to IAM (mixture for domain reduction + AR model for correlation).
func (s *Suite) AblationGMMOnly() (*Report, error) {
	r := &Report{
		Title:  "Ablation: multivariate GMM alone vs IAM (TWI)",
		Header: []string{"Estimator", "Mean", "Median", "95th", "Max"},
	}
	t, err := s.Table("twi")
	if err != nil {
		return nil, err
	}
	w, err := s.Workload("twi")
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, t.NumRows())
	for i := range rows {
		x := make([]float64, t.NumCols())
		for j, c := range t.Columns {
			x[j] = c.Floats[i]
		}
		rows[i] = x
	}
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 1900))
	mv, err := gmm.FitMulti(rows, 2*s.Cfg.Components, 20, rng)
	if err != nil {
		return nil, err
	}

	floor := 1.0 / float64(t.NumRows())
	errs := make([]float64, len(w.Queries))
	lo := make([]float64, t.NumCols())
	hi := make([]float64, t.NumCols())
	for i, q := range w.Queries {
		for j, rr := range q.Ranges {
			lo[j], hi[j] = math.Inf(-1), math.Inf(1)
			if rr != nil {
				lo[j], hi[j] = rr.Lo, rr.Hi
			}
		}
		errs[i] = estimator.QError(w.TrueSel[i], mv.EstimateBox(lo, hi), floor)
	}
	sum := estimator.Summarize(errs)
	r.Addf(fmt.Sprintf("MultiGMM (K=%d)", 2*s.Cfg.Components), sum.Mean, sum.Median, sum.P95, sum.Max)

	iamModel, err := s.IAM("twi")
	if err != nil {
		return nil, err
	}
	ev, err := estimator.Evaluate(iamModel, w, t.NumRows())
	if err != nil {
		return nil, err
	}
	sum = ev.Summary
	r.Addf("IAM", sum.Mean, sum.Median, sum.P95, sum.Max)
	return r, nil
}

// AblationExhaustive compares IAM's progressive sampling against exact
// enumeration of the reduced search space — feasible only because the GMMs
// shrank each queried column to K symbols (the paper rules enumeration out
// for original domains, §3). Enumeration removes all Monte-Carlo error.
func (s *Suite) AblationExhaustive() (*Report, error) {
	r := &Report{
		Title:  "Ablation: progressive sampling vs exhaustive enumeration (TWI)",
		Header: []string{"Inference", "Mean", "Median", "95th", "Max", "Est.time(ms)"},
	}
	t, err := s.Table("twi")
	if err != nil {
		return nil, err
	}
	w, err := s.Workload("twi")
	if err != nil {
		return nil, err
	}
	for _, mode := range []struct {
		label string
		limit int
	}{{"sampling (S_p paths)", 0}, {"exhaustive enumeration", 200000}} {
		cfg := s.iamCfg(s.Cfg.Seed + 2000)
		cfg.ExhaustiveLimit = mode.limit
		m, err := s.trainIAM(t, cfg)
		if err != nil {
			return nil, err
		}
		ev, err := estimator.Evaluate(m, w, t.NumRows())
		if err != nil {
			return nil, err
		}
		sum := ev.Summary
		r.Addf(mode.label, sum.Mean, sum.Median, sum.P95, sum.Max,
			float64(ev.AvgLatency.Microseconds())/1000)
	}
	return r, nil
}

// QueryDistributionSweep reproduces the technical report's "impact of query
// distribution" study: IAM versus NeuroCard as the number of predicated
// columns grows (narrow one-filter probes through full-width conjunctions).
func (s *Suite) QueryDistributionSweep() (*Report, error) {
	r := &Report{
		Title:  "Impact of query distribution: #filters vs q-error on WISDM",
		Header: []string{"Filters", "Estimator", "Mean", "Median", "95th", "Max"},
	}
	t, err := s.Table("wisdm")
	if err != nil {
		return nil, err
	}
	iamModel, err := s.IAM("wisdm")
	if err != nil {
		return nil, err
	}
	ncModel, err := s.Neurocard("wisdm")
	if err != nil {
		return nil, err
	}
	for _, nf := range []int{1, 2, 3, 5} {
		w, err := query.Generate(t, query.GenConfig{
			NumQueries: s.Cfg.TestQueries / 2, Seed: s.Cfg.Seed + int64(nf)*13,
			MinFilters: nf, MaxFilters: nf,
		})
		if err != nil {
			return nil, err
		}
		for _, e := range []estimator.Estimator{iamModel, ncModel} {
			ev, err := estimator.Evaluate(e, w, t.NumRows())
			if err != nil {
				return nil, err
			}
			sum := ev.Summary
			r.Addf(nf, e.Name(), sum.Mean, sum.Median, sum.P95, sum.Max)
		}
	}
	return r, nil
}

// ProgressiveSampleSweep varies S_p, the number of progressive-sampling
// paths per query (the paper fixes 8000; we show the accuracy/latency
// trade-off directly).
func (s *Suite) ProgressiveSampleSweep() (*Report, error) {
	r := &Report{
		Title:  "Impact of progressive-sampling width S_p on WISDM (IAM)",
		Header: []string{"S_p", "Mean", "Median", "95th", "Max", "Est.time(ms)"},
	}
	t, err := s.Table("wisdm")
	if err != nil {
		return nil, err
	}
	w, err := s.Workload("wisdm")
	if err != nil {
		return nil, err
	}
	// One trained model; only the inference width changes.
	for _, sp := range []int{50, 200, 800, 2000} {
		cfg := s.iamCfg(s.Cfg.Seed + 1800)
		cfg.NumSamples = sp
		m, err := s.trainIAM(t, cfg)
		if err != nil {
			return nil, err
		}
		ev, err := estimator.Evaluate(m, w, t.NumRows())
		if err != nil {
			return nil, err
		}
		sum := ev.Summary
		r.Addf(sp, sum.Mean, sum.Median, sum.P95, sum.Max,
			float64(ev.AvgLatency.Microseconds())/1000)
	}
	r.Notes = append(r.Notes, "the model is retrained per row only because NumSamples is fixed at construction; weights are identical across rows (same seed)")
	return r, nil
}
