package bench

import (
	"fmt"
	"time"

	"iam/internal/core"
	"iam/internal/dataset"
	"iam/internal/domainred"
	"iam/internal/estimator"
	"iam/internal/join"
	"iam/internal/naru"
	"iam/internal/optimizer"
	"iam/internal/query"
)

// Table1 reproduces the dataset-statistics table.
func (s *Suite) Table1() (*Report, error) {
	r := &Report{
		Title:  "Table 1: Datasets in Evaluation",
		Header: []string{"Dataset", "Rows", "Cols.Cat", "Cols.Con", "Joint(log10)", "NCIE", "SkewMax"},
	}
	for _, name := range SingleTableDatasets() {
		t, err := s.Table(name)
		if err != nil {
			return nil, err
		}
		st := dataset.Describe(t)
		r.Addf(name, st.Rows, st.ColsCat, st.ColsCon, st.JointLog10, st.NCIE, st.FisherSkewMax)
	}
	sch := s.IMDB()
	cat, con := 0, 0
	tables := []*dataset.Table{sch.Root, sch.Children[0].Table, sch.Children[1].Table}
	var joint float64
	for _, t := range tables {
		st := dataset.Describe(t)
		cat += st.ColsCat
		con += st.ColsCon
		joint += st.JointLog10
	}
	r.Addf("imdb", int(sch.FullJoinSize()), cat, con, joint, 0.0, 0.0)
	r.Notes = append(r.Notes, "imdb Rows is the full-outer-join size |J|; its NCIE/skew are per-table statistics omitted here")
	return r, nil
}

// ErrorTable reproduces Tables 2-4: estimation q-errors of every estimator
// on one single-table dataset.
func (s *Suite) ErrorTable(name string) (*Report, error) {
	tableNo := map[string]string{"wisdm": "Table 2", "twi": "Table 3", "higgs": "Table 4"}[name]
	r := &Report{
		Title:  fmt.Sprintf("%s: Estimation errors on %s", tableNo, name),
		Header: []string{"Estimator", "Mean", "Median", "95th", "99th", "Max"},
	}
	ests, err := s.Estimators(name)
	if err != nil {
		return nil, err
	}
	w, err := s.Workload(name)
	if err != nil {
		return nil, err
	}
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	rows := t.NumRows()
	for _, label := range EstimatorNames() {
		ev, err := estimator.Evaluate(ests[label], w, rows)
		if err != nil {
			return nil, err
		}
		sum := ev.Summary
		r.Addf(label, sum.Mean, sum.Median, sum.P95, sum.P99, sum.Max)
	}
	return r, nil
}

// Table2 — WISDM errors.
func (s *Suite) Table2() (*Report, error) { return s.ErrorTable("wisdm") }

// Table3 — TWI errors.
func (s *Suite) Table3() (*Report, error) { return s.ErrorTable("twi") }

// Table4 — HIGGS errors.
func (s *Suite) Table4() (*Report, error) { return s.ErrorTable("higgs") }

// Table5 reproduces the IMDB join-error table.
func (s *Suite) Table5() (*Report, error) {
	r := &Report{
		Title:  "Table 5: Estimation errors on IMDB (join queries)",
		Header: []string{"Estimator", "Mean", "Median", "95th", "99th", "Max"},
	}
	ests, err := s.JoinEstimators()
	if err != nil {
		return nil, err
	}
	w, err := s.JoinWorkload()
	if err != nil {
		return nil, err
	}
	for _, label := range JoinEstimatorNames() {
		errs := make([]float64, len(w.Queries))
		for i, jq := range w.Queries {
			est, err := ests[label].EstimateCard(jq)
			if err != nil {
				return nil, err
			}
			errs[i] = estimator.QError(w.Cards[i], est, 1)
		}
		sum := estimator.Summarize(errs)
		r.Addf(label, sum.Mean, sum.Median, sum.P95, sum.P99, sum.Max)
	}
	return r, nil
}

// Figure4 reproduces the single-query inference-latency figure.
func (s *Suite) Figure4() (*Report, error) {
	r := &Report{
		Title:  "Figure 4: Inference time per query (ms)",
		Header: append([]string{"Estimator"}, SingleTableDatasets()...),
	}
	n := 30
	for _, label := range EstimatorNames() {
		row := []interface{}{label}
		for _, name := range SingleTableDatasets() {
			ests, err := s.Estimators(name)
			if err != nil {
				return nil, err
			}
			e := ests[label]
			w, err := s.Workload(name)
			if err != nil {
				return nil, err
			}
			qs := w.Queries
			if len(qs) > n {
				qs = qs[:n]
			}
			start := time.Now()
			for _, q := range qs {
				if _, err := e.Estimate(q); err != nil {
					return nil, err
				}
			}
			ms := float64(time.Since(start).Microseconds()) / 1000 / float64(len(qs))
			row = append(row, ms)
		}
		r.Addf(row...)
	}
	// IMDB join inference latency.
	r.Notes = append(r.Notes, "imdb join latencies appear as rows prefixed imdb/")
	jw, err := s.JoinWorkload()
	if err != nil {
		return nil, err
	}
	jests, err := s.JoinEstimators()
	if err != nil {
		return nil, err
	}
	for _, label := range JoinEstimatorNames() {
		e := jests[label]
		qs := jw.Queries
		if len(qs) > n {
			qs = qs[:n]
		}
		start := time.Now()
		for _, q := range qs {
			if _, err := e.EstimateCard(q); err != nil {
				return nil, err
			}
		}
		ms := float64(time.Since(start).Microseconds()) / 1000 / float64(len(qs))
		r.Addf("imdb/"+label, ms, "", "")
	}
	return r, nil
}

// Table6 reproduces the model-size table.
func (s *Suite) Table6() (*Report, error) {
	r := &Report{
		Title:  "Table 6: Model sizes (KB)",
		Header: []string{"Estimator", "wisdm", "twi", "higgs", "imdb"},
	}
	sizer := func(e interface{}) float64 {
		if sz, ok := e.(estimator.Sizer); ok {
			return float64(sz.SizeBytes()) / 1024
		}
		return 0
	}
	jests, err := s.JoinEstimators()
	if err != nil {
		return nil, err
	}
	for _, label := range []string{"MSCN", "DeepDB", "Neurocard", "IAM"} {
		row := []interface{}{label}
		for _, name := range SingleTableDatasets() {
			ests, err := s.Estimators(name)
			if err != nil {
				return nil, err
			}
			row = append(row, sizer(ests[label]))
		}
		row = append(row, sizer(jests[label]))
		r.Addf(row...)
	}
	return r, nil
}

// Table7 reproduces batch-inference timing on IMDB.
func (s *Suite) Table7() (*Report, error) {
	r := &Report{
		Title:  "Table 7: Inference time with batch query processing on IMDB (ms per query)",
		Header: []string{"Estimator", "batch=1", "batch=64", "batch=128"},
	}
	w, err := s.JoinWorkload()
	if err != nil {
		return nil, err
	}
	jests, err := s.JoinEstimators()
	if err != nil {
		return nil, err
	}
	type batcher interface {
		EstimateCardBatch([]*join.JoinQuery) ([]float64, error)
	}
	run := func(label string) error {
		e := jests[label]
		row := []interface{}{label}
		for _, b := range []int{1, 64, 128} {
			qs := make([]*join.JoinQuery, b)
			for i := range qs {
				qs[i] = w.Queries[i%len(w.Queries)]
			}
			start := time.Now()
			if be, ok := e.(batcher); ok {
				if _, err := be.EstimateCardBatch(qs); err != nil {
					return err
				}
			} else {
				for _, q := range qs {
					if _, err := e.EstimateCard(q); err != nil {
						return err
					}
				}
			}
			row = append(row, float64(time.Since(start).Microseconds())/1000/float64(b))
		}
		r.Addf(row...)
		return nil
	}
	for _, label := range []string{"MSCN", "Neurocard", "IAM"} {
		if err := run(label); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Figure5 reproduces the end-to-end optimizer experiment.
func (s *Suite) Figure5() (*Report, error) {
	r := &Report{
		Title:  "Figure 5: End-to-end execution with optimizer on IMDB",
		Header: []string{"Estimator", "exec-time(ms)", "intermediate-tuples"},
	}
	sch := s.IMDB()
	w, err := s.JoinWorkload()
	if err != nil {
		return nil, err
	}
	if len(w.Queries) > 60 {
		w = &join.JoinWorkload{Queries: w.Queries[:60], Cards: w.Cards[:60]}
	}
	jests, err := s.JoinEstimators()
	if err != nil {
		return nil, err
	}
	run := func(label string, est join.CardEstimator) error {
		elapsed, inter, err := optimizer.RunWorkload(sch, est, w)
		if err != nil {
			return err
		}
		r.Addf(label, float64(elapsed.Microseconds())/1000, inter)
		return nil
	}
	for _, label := range JoinEstimatorNames() {
		if err := run(label, jests[label]); err != nil {
			return nil, err
		}
	}
	if err := run("TrueCard", &optimizer.Oracle{Schema: sch}); err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"exec-time is actual hash-join execution of the chosen plans; TrueCard is the exact-cardinality oracle (lower bound)")
	return r, nil
}

// Figure6 reproduces the training-curve figure: max q-error vs epoch,
// evaluated with the in-training model after every epoch.
func (s *Suite) Figure6() (*Report, error) {
	r := &Report{
		Title:  "Figure 6: Training epoch vs max q-error (IAM)",
		Header: []string{"Epoch", "wisdm", "twi", "higgs"},
	}
	nEval := 50
	curves := map[string][]float64{}
	for _, name := range SingleTableDatasets() {
		t, err := s.Table(name)
		if err != nil {
			return nil, err
		}
		w, err := s.Workload(name)
		if err != nil {
			return nil, err
		}
		qs := w.Queries
		truth := w.TrueSel
		if len(qs) > nEval {
			qs = qs[:nEval]
			truth = truth[:nEval]
		}
		cfg := s.iamCfg(s.Cfg.Seed + 900)
		var maxErrs []float64
		var evalErr error
		cfg.OnEpoch = func(epoch int, m *core.Model, gmmNLL, arNLL float64) bool {
			worst, err := maxQError(m, qs, truth, t.NumRows())
			if err != nil {
				evalErr = err
				return false
			}
			maxErrs = append(maxErrs, worst)
			return true
		}
		if _, err := s.trainIAM(t, cfg); err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		curves[name] = maxErrs
	}
	//lint:ignore ctxtrain formats already-computed per-epoch rows; no training happens in this loop
	for e := 0; e < s.Cfg.Epochs; e++ {
		row := []interface{}{e + 1}
		for _, name := range SingleTableDatasets() {
			if e < len(curves[name]) {
				row = append(row, curves[name][e])
			} else {
				row = append(row, "")
			}
		}
		r.Addf(row...)
	}
	return r, nil
}

// subWorkload returns the first n queries of w (with truths).
func subWorkload(w *query.Workload, n int) *query.Workload {
	if n <= 0 || n >= len(w.Queries) {
		return w
	}
	return &query.Workload{Queries: w.Queries[:n], TrueSel: w.TrueSel[:n]}
}

func maxQError(m *core.Model, qs []*query.Query, truth []float64, rows int) (float64, error) {
	floor := 1.0 / float64(rows)
	worst := 1.0
	for i, q := range qs {
		est, err := m.Estimate(q)
		if err != nil {
			return 0, err
		}
		if qe := estimator.QError(truth[i], est, floor); qe > worst {
			worst = qe
		}
	}
	return worst, nil
}

// Table8 reproduces the training-time table on IMDB.
func (s *Suite) Table8() (*Report, error) {
	r := &Report{
		Title:  "Table 8: Training time (s) on IMDB",
		Header: []string{"Estimator", "seconds"},
	}
	if _, err := s.JoinEstimators(); err != nil { // ensure built
		return nil, err
	}
	for _, label := range []string{"MSCN", "DeepDB", "Neurocard", "IAM"} {
		r.Addf(label, s.joinTimes[label].Seconds())
	}
	return r, nil
}

// DomainReductionTable reproduces Tables 9-11 for one dataset: GMM(K)
// versus Hist/Spline/UMM at 30/100/1000 components.
func (s *Suite) DomainReductionTable(name string) (*Report, error) {
	tableNo := map[string]string{"wisdm": "Table 9", "twi": "Table 10", "higgs": "Table 11"}[name]
	r := &Report{
		Title:  fmt.Sprintf("%s: Impact of domain reducing methods on %s", tableNo, name),
		Header: []string{"Method", "Median", "95th", "Max", "Est.time(ms)"},
	}
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	full, err := s.Workload(name)
	if err != nil {
		return nil, err
	}
	w := subWorkload(full, s.Cfg.TestQueries/2)

	run := func(label string, factory func([]float64, int, int64) core.Reducer, k int) error {
		cfg := s.iamCfg(s.Cfg.Seed + 1000)
		cfg.Components = k
		cfg.ReducerFactory = factory
		cfg.Epochs = (s.Cfg.Epochs + 1) / 2 // sweep at half budget
		m, err := s.trainIAM(t, cfg)
		if err != nil {
			return err
		}
		ev, err := estimator.Evaluate(m, w, t.NumRows())
		if err != nil {
			return err
		}
		sum := ev.Summary
		ms := float64(ev.AvgLatency.Microseconds()) / 1000
		r.Addf(label, sum.Median, sum.P95, sum.Max, ms)
		return nil
	}
	if err := run(fmt.Sprintf("GMM (%d)", s.Cfg.Components), nil, s.Cfg.Components); err != nil {
		return nil, err
	}
	for _, k := range []int{30, 100, 1000} {
		if err := run(fmt.Sprintf("Hist (%d)", k), domainred.EquiDepthFactory(), k); err != nil {
			return nil, err
		}
	}
	for _, k := range []int{30, 100, 1000} {
		if err := run(fmt.Sprintf("Spline (%d)", k), domainred.SplineFactory(), k); err != nil {
			return nil, err
		}
	}
	for _, k := range []int{30, 100, 1000} {
		if err := run(fmt.Sprintf("UMM (%d)", k), domainred.UMMFactory(), k); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Table9 — WISDM domain-reduction ablation.
func (s *Suite) Table9() (*Report, error) { return s.DomainReductionTable("wisdm") }

// Table10 — TWI domain-reduction ablation.
func (s *Suite) Table10() (*Report, error) { return s.DomainReductionTable("twi") }

// Table11 — HIGGS domain-reduction ablation.
func (s *Suite) Table11() (*Report, error) { return s.DomainReductionTable("higgs") }

// Figure7 reproduces the component-count sweep.
func (s *Suite) Figure7() (*Report, error) {
	r := &Report{
		Title:  "Figure 7: Varying the number of mixture components (IAM q-errors)",
		Header: []string{"K", "dataset", "Median", "95th", "Max"},
	}
	for _, name := range SingleTableDatasets() {
		t, err := s.Table(name)
		if err != nil {
			return nil, err
		}
		full, err := s.Workload(name)
		if err != nil {
			return nil, err
		}
		w := subWorkload(full, s.Cfg.TestQueries/2)
		for _, k := range []int{1, 5, 10, 30, 50, 70} {
			cfg := s.iamCfg(s.Cfg.Seed + 1100)
			cfg.Components = k
			cfg.Epochs = (s.Cfg.Epochs + 1) / 2 // sweep at half budget
			m, err := s.trainIAM(t, cfg)
			if err != nil {
				return nil, err
			}
			ev, err := estimator.Evaluate(m, w, t.NumRows())
			if err != nil {
				return nil, err
			}
			sum := ev.Summary
			r.Addf(k, name, sum.Median, sum.P95, sum.Max)
		}
	}
	return r, nil
}

// Table12 reproduces model size vs component count.
func (s *Suite) Table12() (*Report, error) {
	r := &Report{
		Title:  "Table 12: Model size (KB) of IAM vs number of components",
		Header: []string{"K", "wisdm", "twi", "higgs"},
	}
	for _, k := range []int{1, 10, 30, 50, 70} {
		row := []interface{}{k}
		for _, name := range SingleTableDatasets() {
			t, err := s.Table(name)
			if err != nil {
				return nil, err
			}
			cfg := s.iamCfg(s.Cfg.Seed + 1200)
			cfg.Components = k
			cfg.Epochs = 1 // size depends only on architecture
			m, err := s.trainIAM(t, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, float64(m.SizeBytes())/1024)
		}
		r.Addf(row...)
	}
	return r, nil
}

// AblationBiasCorrection demonstrates Theorem 5.1 empirically: IAM with and
// without the §5.2 bias correction.
func (s *Suite) AblationBiasCorrection() (*Report, error) {
	r := &Report{
		Title:  "Ablation: unbiased sampling correction (TWI)",
		Header: []string{"Variant", "Mean", "Median", "95th", "Max"},
	}
	t, err := s.Table("twi")
	if err != nil {
		return nil, err
	}
	w, err := s.Workload("twi")
	if err != nil {
		return nil, err
	}
	for _, mode := range []struct {
		label       string
		uncorrected bool
	}{{"corrected (IAM)", false}, {"uncorrected", true}} {
		cfg := s.iamCfg(s.Cfg.Seed + 1300)
		cfg.Uncorrected = mode.uncorrected
		m, err := s.trainIAM(t, cfg)
		if err != nil {
			return nil, err
		}
		ev, err := estimator.Evaluate(m, w, t.NumRows())
		if err != nil {
			return nil, err
		}
		sum := ev.Summary
		r.Addf(mode.label, sum.Mean, sum.Median, sum.P95, sum.Max)
	}
	return r, nil
}

// AblationMassModes compares the three range-mass estimators.
func (s *Suite) AblationMassModes() (*Report, error) {
	r := &Report{
		Title:  "Ablation: P_GMM(R) estimation mode (TWI)",
		Header: []string{"Mode", "Mean", "Median", "95th", "Max"},
	}
	t, err := s.Table("twi")
	if err != nil {
		return nil, err
	}
	w, err := s.Workload("twi")
	if err != nil {
		return nil, err
	}
	for _, mode := range []struct {
		label string
		mm    core.RangeMassMode
	}{
		{"MonteCarlo (paper)", core.MassMonteCarlo},
		{"Exact CDF", core.MassExact},
		{"Empirical", core.MassEmpirical},
	} {
		cfg := s.iamCfg(s.Cfg.Seed + 1400)
		cfg.MassMode = mode.mm
		m, err := s.trainIAM(t, cfg)
		if err != nil {
			return nil, err
		}
		ev, err := estimator.Evaluate(m, w, t.NumRows())
		if err != nil {
			return nil, err
		}
		sum := ev.Summary
		r.Addf(mode.label, sum.Mean, sum.Median, sum.P95, sum.Max)
	}
	return r, nil
}

// AblationJointVsSeparate compares end-to-end joint training with separate
// GMM-then-AR training (§4.3).
func (s *Suite) AblationJointVsSeparate() (*Report, error) {
	r := &Report{
		Title:  "Ablation: joint vs separate training (WISDM)",
		Header: []string{"Variant", "Mean", "Median", "95th", "Max"},
	}
	t, err := s.Table("wisdm")
	if err != nil {
		return nil, err
	}
	w, err := s.Workload("wisdm")
	if err != nil {
		return nil, err
	}
	for _, mode := range []struct {
		label    string
		separate bool
	}{{"joint end-to-end (IAM)", false}, {"separate", true}} {
		cfg := s.iamCfg(s.Cfg.Seed + 1500)
		cfg.SeparateTraining = mode.separate
		m, err := s.trainIAM(t, cfg)
		if err != nil {
			return nil, err
		}
		ev, err := estimator.Evaluate(m, w, t.NumRows())
		if err != nil {
			return nil, err
		}
		sum := ev.Summary
		r.Addf(mode.label, sum.Mean, sum.Median, sum.P95, sum.Max)
	}
	return r, nil
}

// AblationColumnOrder evaluates NeuroCard under different column orders
// (§4.3 "Column Order").
func (s *Suite) AblationColumnOrder() (*Report, error) {
	r := &Report{
		Title:  "Ablation: column order (Neurocard on WISDM)",
		Header: []string{"Order", "Mean", "Median", "95th", "Max"},
	}
	t, err := s.Table("wisdm")
	if err != nil {
		return nil, err
	}
	w, err := s.Workload("wisdm")
	if err != nil {
		return nil, err
	}
	n := t.NumCols()
	orders := map[string][]int{
		"natural":  nil,
		"reversed": {4, 3, 2, 1, 0},
		"rotated":  {2, 3, 4, 0, 1},
	}
	for _, label := range []string{"natural", "reversed", "rotated"} {
		cfg := s.naruCfg(s.Cfg.Seed + 1600)
		if o := orders[label]; o != nil {
			cfg.ColumnOrder = o[:n]
		}
		nm, err := naru.TrainContext(s.context(), t, cfg)
		if err != nil {
			return nil, err
		}
		ev, err := estimator.Evaluate(nm, w, t.NumRows())
		if err != nil {
			return nil, err
		}
		sum := ev.Summary
		r.Addf(label, sum.Mean, sum.Median, sum.P95, sum.Max)
	}
	return r, nil
}
