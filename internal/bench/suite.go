package bench

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"time"

	"iam/internal/bayesnet"
	"iam/internal/core"
	"iam/internal/dataset"
	"iam/internal/estimator"
	"iam/internal/join"
	"iam/internal/kde"
	"iam/internal/mhist"
	"iam/internal/mscn"
	"iam/internal/naru"
	"iam/internal/pghist"
	"iam/internal/query"
	"iam/internal/quicksel"
	"iam/internal/sampling"
	"iam/internal/spn"
	"iam/internal/uae"
)

// Config sets the scale of the evaluation. Defaults are CPU-laptop scale;
// the paper's full scale (10^6-10^7 rows, 2k test / 10k training queries)
// is reachable by raising these numbers.
type Config struct {
	Rows         int   // rows per single-table dataset
	IMDBTitles   int   // dimension-table rows of the synthetic IMDB
	TestQueries  int   // evaluation workload size (paper: 2000)
	TrainQueries int   // workload for query-driven estimators (paper: 10000)
	JoinQueries  int   // join workload size
	Epochs       int   // AR training epochs
	Hidden       []int // AR hidden widths (paper: 256,128,128,256)
	NumSamples   int   // progressive-sampling width (paper: 8000)
	Components   int   // GMM components K (paper: 30)
	Seed         int64
}

// DefaultConfig returns the laptop-scale configuration; the environment
// variable IAM_BENCH_SCALE (a float multiplier) scales rows and workloads,
// and IAM_BENCH_SEED overrides the base seed every dataset, workload, and
// model seed derives from.
func DefaultConfig() Config {
	cfg := Config{
		Rows:         10000,
		IMDBTitles:   800,
		TestQueries:  160,
		TrainQueries: 500,
		JoinQueries:  100,
		Epochs:       8,
		Hidden:       []int{64, 32, 32, 64},
		NumSamples:   256,
		Components:   30,
		Seed:         42,
	}
	if sc := os.Getenv("IAM_BENCH_SCALE"); sc != "" {
		if f, err := strconv.ParseFloat(sc, 64); err == nil && f > 0 {
			cfg.Rows = int(float64(cfg.Rows) * f)
			cfg.IMDBTitles = int(float64(cfg.IMDBTitles) * f)
			cfg.TestQueries = int(float64(cfg.TestQueries) * f)
			cfg.TrainQueries = int(float64(cfg.TrainQueries) * f)
			cfg.JoinQueries = int(float64(cfg.JoinQueries) * f)
		}
	}
	if sd := os.Getenv("IAM_BENCH_SEED"); sd != "" {
		if v, err := strconv.ParseInt(sd, 10, 64); err == nil {
			cfg.Seed = v
		}
	}
	return cfg
}

// Suite lazily builds and caches datasets, workloads and trained models so
// several experiments can share them.
type Suite struct {
	Cfg Config
	// Ctx, when non-nil, cancels in-progress model training (and with it
	// the experiment) when the caller shuts down, e.g. on SIGINT.
	Ctx context.Context

	tables     map[string]*dataset.Table
	workloads  map[string]*query.Workload
	trainWLs   map[string]*query.Workload
	estimators map[string]map[string]estimator.Estimator
	trainTimes map[string]map[string]time.Duration

	imdb       *join.Schema
	joinWL     *join.JoinWorkload
	joinTrain  *join.JoinWorkload
	joinEsts   map[string]join.CardEstimator
	joinTimes  map[string]time.Duration
	iamModels  map[string]*core.Model
	naruModels map[string]*naru.Model
}

// NewSuite creates an empty suite.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		Cfg:        cfg,
		tables:     map[string]*dataset.Table{},
		workloads:  map[string]*query.Workload{},
		trainWLs:   map[string]*query.Workload{},
		estimators: map[string]map[string]estimator.Estimator{},
		trainTimes: map[string]map[string]time.Duration{},
		joinEsts:   map[string]join.CardEstimator{},
		joinTimes:  map[string]time.Duration{},
		iamModels:  map[string]*core.Model{},
		naruModels: map[string]*naru.Model{},
	}
}

// SingleTableDatasets lists the paper's single-table datasets.
func SingleTableDatasets() []string { return []string{"wisdm", "twi", "higgs"} }

// Table returns (building on demand) a synthetic dataset by name.
func (s *Suite) Table(name string) (*dataset.Table, error) {
	if t, ok := s.tables[name]; ok {
		return t, nil
	}
	var t *dataset.Table
	switch name {
	case "wisdm":
		t = dataset.SynthWISDM(s.Cfg.Rows, s.Cfg.Seed)
	case "twi":
		t = dataset.SynthTWI(s.Cfg.Rows, s.Cfg.Seed+1)
	case "higgs":
		t = dataset.SynthHIGGS(s.Cfg.Rows, s.Cfg.Seed+2)
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
	s.tables[name] = t
	return t, nil
}

// Workload returns the evaluation workload of a dataset.
func (s *Suite) Workload(name string) (*query.Workload, error) {
	if w, ok := s.workloads[name]; ok {
		return w, nil
	}
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	w, err := query.Generate(t, query.GenConfig{
		NumQueries: s.Cfg.TestQueries, Seed: s.Cfg.Seed + 100,
	})
	if err != nil {
		return nil, err
	}
	s.workloads[name] = w
	return w, nil
}

// TrainWorkload returns the training workload for query-driven estimators.
func (s *Suite) TrainWorkload(name string) (*query.Workload, error) {
	if w, ok := s.trainWLs[name]; ok {
		return w, nil
	}
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	w, err := query.Generate(t, query.GenConfig{
		NumQueries: s.Cfg.TrainQueries, Seed: s.Cfg.Seed + 200,
	})
	if err != nil {
		return nil, err
	}
	s.trainWLs[name] = w
	return w, nil
}

// context returns the suite's cancellation context (Background by default).
func (s *Suite) context() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// trainIAM is core.TrainContext under the suite's cancellation context.
func (s *Suite) trainIAM(t *dataset.Table, cfg core.Config) (*core.Model, error) {
	return core.TrainContext(s.context(), t, cfg)
}

// iamCfg builds the IAM configuration at suite scale.
func (s *Suite) iamCfg(seed int64) core.Config {
	return core.Config{
		Components: s.Cfg.Components,
		Hidden:     s.Cfg.Hidden,
		EmbedDim:   32,
		Epochs:     s.Cfg.Epochs,
		BatchSize:  256,
		NumSamples: s.Cfg.NumSamples,
		GMMSamples: 10000,
		Seed:       seed,
	}
}

func (s *Suite) naruCfg(seed int64) naru.Config {
	return naru.Config{
		// The paper factors large domains into 2^11-wide subcolumns; at our
		// scale 512 preserves the regime the paper studies: the joint
		// sampling space stays many orders of magnitude above the
		// progressive-sampling width for NeuroCard/UAE, while IAM's reduced
		// space (30 per column) is fully covered.
		MaxSubColumn: 512,
		Hidden:       s.Cfg.Hidden,
		EmbedDim:     32,
		Epochs:       s.Cfg.Epochs,
		BatchSize:    256,
		NumSamples:   s.Cfg.NumSamples,
		Seed:         seed,
	}
}

// IAM returns the trained IAM model of a dataset.
func (s *Suite) IAM(name string) (*core.Model, error) {
	if m, ok := s.iamModels[name]; ok {
		return m, nil
	}
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	m, err := s.trainIAM(t, s.iamCfg(s.Cfg.Seed+300))
	if err != nil {
		return nil, fmt.Errorf("bench: training IAM on %s: %w", name, err)
	}
	s.iamModels[name] = m
	return m, nil
}

// Neurocard returns the trained NeuroCard model of a dataset.
func (s *Suite) Neurocard(name string) (*naru.Model, error) {
	if m, ok := s.naruModels[name]; ok {
		return m, nil
	}
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	m, err := naru.TrainContext(s.context(), t, s.naruCfg(s.Cfg.Seed+301))
	if err != nil {
		return nil, fmt.Errorf("bench: training Neurocard on %s: %w", name, err)
	}
	s.naruModels[name] = m
	return m, nil
}

// EstimatorNames lists the single-table estimator roster in report order
// (the paper's Tables 2-4).
func EstimatorNames() []string {
	return []string{
		"Sampling", "Postgres", "MHIST", "BayesNet", "KDE", "DeepDB",
		"MSCN", "QuickSel", "Neurocard", "UAE", "UAE-Q", "IAM",
	}
}

// Estimators builds (and caches) the full estimator roster for a dataset,
// recording training times.
func (s *Suite) Estimators(name string) (map[string]estimator.Estimator, error) {
	if m, ok := s.estimators[name]; ok {
		return m, nil
	}
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	train, err := s.TrainWorkload(name)
	if err != nil {
		return nil, err
	}
	out := map[string]estimator.Estimator{}
	times := map[string]time.Duration{}
	seed := s.Cfg.Seed + 400

	timeIt := func(label string, f func() (estimator.Estimator, error)) error {
		start := time.Now()
		e, err := f()
		if err != nil {
			return fmt.Errorf("bench: building %s on %s: %w", label, name, err)
		}
		out[label] = e
		times[label] = time.Since(start)
		return nil
	}

	builders := []struct {
		label string
		build func() (estimator.Estimator, error)
	}{
		{"IAM", func() (estimator.Estimator, error) { return s.IAM(name) }},
		{"Neurocard", func() (estimator.Estimator, error) { return s.Neurocard(name) }},
		{"Sampling", func() (estimator.Estimator, error) {
			iam, err := s.IAM(name)
			if err != nil {
				return nil, err
			}
			return sampling.NewWithBudget(t, iam.SizeBytes(), seed)
		}},
		{"Postgres", func() (estimator.Estimator, error) {
			return pghist.New(t, pghist.Config{})
		}},
		{"MHIST", func() (estimator.Estimator, error) {
			return mhist.New(t, mhist.Config{Buckets: 500})
		}},
		{"BayesNet", func() (estimator.Estimator, error) {
			return bayesnet.New(t, bayesnet.Config{})
		}},
		{"KDE", func() (estimator.Estimator, error) {
			e, err := kde.New(t, kde.Config{SampleSize: 1000, Seed: seed + 1})
			if err != nil {
				return nil, err
			}
			e.TuneBandwidth(train, t.NumRows())
			return e, nil
		}},
		{"DeepDB", func() (estimator.Estimator, error) {
			return spn.New(t, spn.Config{Seed: seed + 2})
		}},
		{"MSCN", func() (estimator.Estimator, error) {
			return mscn.NewContext(s.context(), t, train, mscn.Config{Epochs: 20, Seed: seed + 3})
		}},
		{"QuickSel", func() (estimator.Estimator, error) {
			return quicksel.New(t, train, quicksel.Config{Seed: seed + 4})
		}},
		{"UAE", func() (estimator.Estimator, error) {
			return uae.TrainUAE(t, train, uae.Config{
				Base: s.naruCfg(seed + 5), QueryEpochs: 1, TrainSamples: 48, QueryBatch: 32,
				Ctx: s.context(),
			})
		}},
		{"UAE-Q", func() (estimator.Estimator, error) {
			return uae.TrainUAEQ(t, train, uae.Config{
				Base: s.naruCfg(seed + 6), QueryEpochs: 2, TrainSamples: 48, QueryBatch: 32, QueryLR: 2e-3,
				Ctx: s.context(),
			})
		}},
	}
	for _, b := range builders {
		if err := timeIt(b.label, b.build); err != nil {
			return nil, err
		}
	}

	s.estimators[name] = out
	s.trainTimes[name] = times
	return out, nil
}

// IMDB returns the synthetic join schema.
func (s *Suite) IMDB() *join.Schema {
	if s.imdb == nil {
		s.imdb = join.NewIMDBSchema(dataset.SynthIMDB(s.Cfg.IMDBTitles, s.Cfg.Seed+3))
	}
	return s.imdb
}

// JoinWorkload returns the evaluation join workload.
func (s *Suite) JoinWorkload() (*join.JoinWorkload, error) {
	if s.joinWL == nil {
		w, err := s.IMDB().GenerateWorkload(join.GenJoinConfig{
			NumQueries: s.Cfg.JoinQueries, Seed: s.Cfg.Seed + 500,
		})
		if err != nil {
			return nil, err
		}
		s.joinWL = w
	}
	return s.joinWL, nil
}

// JoinTrainWorkload returns the training join workload.
func (s *Suite) JoinTrainWorkload() (*join.JoinWorkload, error) {
	if s.joinTrain == nil {
		w, err := s.IMDB().GenerateWorkload(join.GenJoinConfig{
			NumQueries: s.Cfg.TrainQueries / 2, Seed: s.Cfg.Seed + 600,
		})
		if err != nil {
			return nil, err
		}
		s.joinTrain = w
	}
	return s.joinTrain, nil
}

// arJoinCfg builds the join estimator configuration at suite scale.
func (s *Suite) arJoinCfg(seed int64) join.ARJoinConfig {
	return join.ARJoinConfig{
		SampleRows:   2 * s.Cfg.Rows,
		Components:   s.Cfg.Components,
		MaxSubColumn: 512,
		Hidden:       s.Cfg.Hidden,
		EmbedDim:     32,
		Epochs:       s.Cfg.Epochs,
		BatchSize:    256,
		NumSamples:   s.Cfg.NumSamples,
		GMMSamples:   10000,
		Seed:         seed,
		Ctx:          s.context(),
	}
}

// JoinEstimatorNames lists the join estimator roster (paper Table 5).
func JoinEstimatorNames() []string {
	return []string{"Postgres", "DeepDB", "MSCN", "Neurocard", "UAE", "UAE-Q", "IAM"}
}

// JoinEstimators builds (and caches) all join estimators, recording
// training times.
func (s *Suite) JoinEstimators() (map[string]join.CardEstimator, error) {
	if len(s.joinEsts) > 0 {
		return s.joinEsts, nil
	}
	sch := s.IMDB()
	train, err := s.JoinTrainWorkload()
	if err != nil {
		return nil, err
	}
	seed := s.Cfg.Seed + 700

	builders := []struct {
		label string
		build func() (join.CardEstimator, error)
	}{
		{"IAM", func() (join.CardEstimator, error) {
			return join.TrainIAMJoin(sch, s.arJoinCfg(seed))
		}},
		{"Neurocard", func() (join.CardEstimator, error) {
			return join.TrainNeurocardJoin(sch, s.arJoinCfg(seed+1))
		}},
		{"UAE", func() (join.CardEstimator, error) {
			return join.TrainUAEJoin(sch, train, s.arJoinCfg(seed+2), 2, 5e-4)
		}},
		{"UAE-Q", func() (join.CardEstimator, error) {
			return join.TrainUAEQJoin(sch, train, s.arJoinCfg(seed+3), 5, 1e-3)
		}},
		{"Postgres", func() (join.CardEstimator, error) {
			return join.NewPGJoin(sch, pghist.Config{})
		}},
		{"DeepDB", func() (join.CardEstimator, error) {
			return join.NewSPNJoin(sch, 2*s.Cfg.Rows, spn.Config{Seed: seed + 4})
		}},
		{"MSCN", func() (join.CardEstimator, error) {
			return join.NewMSCNJoin(sch, train, join.MSCNJoinConfig{Epochs: 20, Seed: seed + 5, Ctx: s.context()})
		}},
	}
	for _, b := range builders {
		start := time.Now()
		e, err := b.build()
		if err != nil {
			return nil, fmt.Errorf("bench: building join estimator %s: %w", b.label, err)
		}
		s.joinEsts[b.label] = e
		s.joinTimes[b.label] = time.Since(start)
	}
	return s.joinEsts, nil
}
