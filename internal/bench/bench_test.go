package bench

import (
	"strings"
	"testing"
)

// tinyConfig keeps the smoke tests fast.
func tinyConfig() Config {
	return Config{
		Rows:         2500,
		IMDBTitles:   300,
		TestQueries:  40,
		TrainQueries: 120,
		JoinQueries:  25,
		Epochs:       3,
		Hidden:       []int{32, 32},
		NumSamples:   200,
		Components:   15,
		Seed:         1,
	}
}

func TestTable1(t *testing.T) {
	s := NewSuite(tinyConfig())
	r, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 datasets", len(r.Rows))
	}
	out := r.String()
	for _, name := range []string{"wisdm", "twi", "higgs", "imdb"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %s in:\n%s", name, out)
		}
	}
}

func TestErrorTableSmoke(t *testing.T) {
	s := NewSuite(tinyConfig())
	r, err := s.Table3() // TWI is the cheapest (2 columns)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(EstimatorNames()) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(EstimatorNames()))
	}
	t.Log("\n" + r.String())
}

func TestModelCachingAcrossExperiments(t *testing.T) {
	s := NewSuite(tinyConfig())
	a, err := s.IAM("twi")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.IAM("twi")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("IAM model rebuilt instead of cached")
	}
	e1, err := s.Estimators("twi")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Estimators("twi")
	if err != nil {
		t.Fatal(err)
	}
	if e1["IAM"] != e2["IAM"] {
		t.Fatal("estimator roster rebuilt")
	}
	if e1["IAM"] != interface{}(a) {
		t.Fatal("roster IAM differs from cached IAM")
	}
}

func TestFigure6Smoke(t *testing.T) {
	cfg := tinyConfig()
	cfg.Epochs = 3
	s := NewSuite(cfg)
	r, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want one per epoch", len(r.Rows))
	}
}

func TestTable12Smoke(t *testing.T) {
	s := NewSuite(tinyConfig())
	r, err := s.Table12()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Sizes must grow with K within each dataset column.
	first := r.Rows[0]
	last := r.Rows[len(r.Rows)-1]
	if first[1] >= last[1] {
		t.Fatalf("size did not grow with K: %v vs %v", first, last)
	}
}

func TestReportFormatting(t *testing.T) {
	r := &Report{Title: "T", Header: []string{"a", "bb"}}
	r.Add("x", "y")
	r.Addf("long-cell", 3.14159)
	out := r.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "3.142") {
		t.Fatalf("bad report:\n%s", out)
	}
}

func TestReportWriteCSV(t *testing.T) {
	r := &Report{Title: "T", Header: []string{"a", "b"}}
	r.Add("x", "1")
	r.Add("y", "2")
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1\ny,2\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
