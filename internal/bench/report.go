// Package bench is the experiment harness: one driver per table and figure
// of the paper's evaluation (§6), each regenerating the corresponding rows
// (estimator × error quantiles, inference latencies, model sizes, training
// curves, domain-reduction ablations, optimizer end-to-end cost) on the
// synthetic datasets. The drivers are shared between `go test -bench` and
// cmd/benchrunner.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Report is one regenerated table or figure as text.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends one row of cells.
func (r *Report) Add(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Addf appends a row formatted from values (numbers get %.4g).
func (r *Report) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// WriteCSV emits the report as CSV (header row first) so figures can be
// re-plotted with external tooling.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
