package shard

import (
	"fmt"
	"testing"

	"iam/internal/dataset"
	"iam/internal/query"
	"iam/internal/testutil"
)

func benchCfg(k int) Config {
	cfg := Config{Shards: k, TrainParallel: -1}
	cfg.GMMThreshold = 50
	cfg.Epochs = 2
	cfg.Hidden = []int{64, 32, 32, 64}
	cfg.NumSamples = 500
	cfg.Seed = 2
	return cfg
}

func benchRows() int {
	if testing.Short() {
		return 2000 // CI bench job scale: same shape, faster setup
	}
	return 5000
}

// BenchmarkShardedTrain is the sharded-training headline: full ensemble
// training (per-shard GMM fit + AR train, shards in parallel) at increasing
// shard counts on a fixed table, reported as rows/s. shards=1 is the plain
// single-model baseline; the per-shard trajectories are bit-identical
// regardless of TrainParallel, so the comparison is pure wall-clock.
// `make bench-json-train` records the rows into BENCH_train.json.
func BenchmarkShardedTrain(b *testing.B) {
	rows := benchRows()
	tb := dataset.SynthTWI(rows, 1)
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(k)
				cfg.Seed = int64(2 + i)
				e, err := Train(tb, cfg)
				if err != nil {
					b.Fatal(err)
				}
				e.ReleaseWorkers()
			}
			b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkShardedEstimate is the sharded-serving headline: one 64-query
// batch per iteration through a 4-shard ensemble, exhaustive merge vs
// variance-based early termination, reported as queries/s plus the fraction
// of shard visits early termination skipped (0 for the exhaustive rows).
// `make bench-json-estimate` records the rows into BENCH_estimate.json.
func BenchmarkShardedEstimate(b *testing.B) {
	const k = 4
	tb := dataset.SynthTWI(benchRows(), 1)
	w := testutil.Workload(b, tb, query.GenConfig{NumQueries: 64, Seed: 3, SkipExec: true})
	for _, bc := range []struct {
		name   string
		relErr float64
	}{{"earlystop=off", 0}, {"earlystop=0.2", 0.2}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := benchCfg(k)
			cfg.EarlyStopRelErr = bc.relErr
			e, err := Train(tb, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.ReleaseWorkers()
			if _, err := e.EstimateBatch(w.Queries); err != nil {
				b.Fatal(err) // warm the per-shard worker pools outside the timer
			}
			e.ResetEarlyStopStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.EstimateBatch(w.Queries); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(w.Queries)*b.N)/b.Elapsed().Seconds(), "queries/s")
			visited, skipped := e.EarlyStopStats()
			if total := visited + skipped; total > 0 {
				b.ReportMetric(float64(skipped)/float64(total), "skipped-frac")
			}
		})
	}
}
