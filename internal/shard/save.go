package shard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"iam/internal/core"
	"iam/internal/dataset"
)

// Ensemble persistence: a magic prefix (so loaders can tell an ensemble file
// from a plain model file by peeking), then one gob snapshot holding the
// ensemble-level configuration, the partition's per-shard row counts, and
// each shard model's own Save bytes. The table data is not serialized — Load
// rebinds against a caller-supplied table, recomputing the partition and
// verifying it matches the one the ensemble was trained on.

// Magic is the file prefix identifying a serialized Ensemble. Plain
// core.Model files are gob streams that cannot begin with these bytes, so an
// 8-byte peek disambiguates the two formats.
const Magic = "IAMENS1\n"

type ensSnapshot struct {
	TableName string
	NumCols   int
	Rows      []int // per-shard row counts, in shard order

	Seed            int64
	TrainParallel   int
	EarlyStopRelErr float64
	EarlyStopZ      float64
	MinShards       int
	Fallback        bool
	FallbackSamples int
	FallbackTimeout int64 // nanoseconds

	Models [][]byte
}

// Save serializes the ensemble to w: the magic prefix, then the snapshot.
func (e *Ensemble) Save(w io.Writer) error {
	st := e.st.Load()
	snap := ensSnapshot{
		TableName:       e.table.Name,
		NumCols:         e.table.NumCols(),
		Seed:            e.cfg.Seed,
		TrainParallel:   e.cfg.TrainParallel,
		EarlyStopRelErr: e.cfg.EarlyStopRelErr,
		EarlyStopZ:      e.cfg.EarlyStopZ,
		MinShards:       e.cfg.MinShards,
		Fallback:        e.cfg.Fallback,
		FallbackSamples: e.cfg.FallbackSamples,
		FallbackTimeout: int64(e.cfg.FallbackTimeout),
	}
	for _, slot := range st.slots {
		snap.Rows = append(snap.Rows, slot.hi-slot.lo)
		var buf bytes.Buffer
		if err := slot.model.Save(&buf); err != nil {
			return fmt.Errorf("shard: saving shard %d: %w", slot.index, err)
		}
		snap.Models = append(snap.Models, buf.Bytes())
	}
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reads an ensemble previously written by Save and rebinds it to t,
// which must be the training table: the partition is recomputed from t and
// every shard's row count must match the saved one, then each shard model
// loads against its recomputed sub-table.
func Load(r io.Reader, t *dataset.Table) (*Ensemble, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("shard: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("shard: not an ensemble file (magic %q)", magic)
	}
	var snap ensSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("shard: decoding ensemble: %w", err)
	}
	if t.Name != snap.TableName || t.NumCols() != snap.NumCols {
		return nil, fmt.Errorf("shard: ensemble was trained on %q (%d cols), got %q (%d cols)",
			snap.TableName, snap.NumCols, t.Name, t.NumCols())
	}
	k := len(snap.Models)
	if k == 0 || len(snap.Rows) != k {
		return nil, fmt.Errorf("shard: snapshot has %d models and %d row counts", k, len(snap.Rows))
	}
	cfg := Config{
		Shards:          k,
		TrainParallel:   snap.TrainParallel,
		EarlyStopRelErr: snap.EarlyStopRelErr,
		EarlyStopZ:      snap.EarlyStopZ,
		MinShards:       snap.MinShards,
		Fallback:        snap.Fallback,
		FallbackSamples: snap.FallbackSamples,
		FallbackTimeout: time.Duration(snap.FallbackTimeout),
	}
	cfg.Seed = snap.Seed
	cfg.fillDefaults()
	parts := Partition(t, k)
	models := make([]*core.Model, k)
	for si, part := range parts {
		if part.NumRows() != snap.Rows[si] {
			return nil, fmt.Errorf("shard: shard %d has %d rows, ensemble was trained on %d — table changed since training",
				si, part.NumRows(), snap.Rows[si])
		}
		m, err := core.Load(bytes.NewReader(snap.Models[si]), part)
		if err != nil {
			return nil, fmt.Errorf("shard: loading shard %d: %w", si, err)
		}
		models[si] = m
	}
	return assemble(t, cfg, parts, models)
}

// IsEnsemble reports whether prefix (at least len(Magic) bytes of the start
// of a file) identifies an ensemble snapshot.
func IsEnsemble(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}
