package shard

import (
	"fmt"
	"math"

	"iam/internal/guard"
	"iam/internal/query"
	"iam/internal/vecmath"
)

// mergeScratch owns the per-call buffers of one batched ensemble estimate:
// the rebound sub-batch (query values re-aimed at a shard's sub-table, with
// Ranges shared), the per-shard seed table, and the early-termination
// accumulators. Scratches are pooled on the ensemble and reused, so a warm
// estimate allocates only what the per-shard model calls allocate.
type mergeScratch struct {
	qvals  []query.Query   // rebound query storage, one slot per batch query
	qptrs  []*query.Query  // sub-batch view: qptrs[j] = &qvals[j]
	seeds  []int64         // per-sub-batch-position sampling seeds
	active []int           // early stop: batch indices still visiting shards
	acc    []float64       // Σ w_s · est_s per query
	varAcc []float64       // Σ w_s² · var_s per query
	wSum   []float64       // Σ w_s per query (over visited shards)
}

func (ms *mergeScratch) prep(nq int) {
	if cap(ms.qvals) < nq {
		ms.qvals = make([]query.Query, nq)
		ms.qptrs = make([]*query.Query, nq)
		ms.seeds = make([]int64, nq)
		ms.active = make([]int, 0, nq)
		ms.acc = make([]float64, nq)
		ms.varAcc = make([]float64, nq)
		ms.wSum = make([]float64, nq)
	}
	ms.qvals = ms.qvals[:nq]
	ms.qptrs = ms.qptrs[:nq]
	ms.seeds = ms.seeds[:nq]
	ms.active = ms.active[:0]
	ms.acc = ms.acc[:nq]
	ms.varAcc = ms.varAcc[:nq]
	ms.wSum = ms.wSum[:nq]
	for i := 0; i < nq; i++ {
		ms.acc[i], ms.varAcc[i], ms.wSum[i] = 0, 0, 0
	}
}

// getScratch checks a merge scratch out of the pool (building one on first
// use); return it with putScratch.
func (e *Ensemble) getScratch() *mergeScratch {
	e.scratchMu.Lock()
	var ms *mergeScratch
	if n := len(e.scratches); n > 0 {
		ms = e.scratches[n-1]
		e.scratches[n-1] = nil
		e.scratches = e.scratches[:n-1]
	}
	e.scratchMu.Unlock()
	if ms == nil {
		ms = &mergeScratch{}
	}
	return ms
}

func (e *Ensemble) putScratch(ms *mergeScratch) {
	e.scratchMu.Lock()
	e.scratches = append(e.scratches, ms)
	e.scratchMu.Unlock()
}

// shardQuerySeed derives the sampling seed shard si uses for a query whose
// caller-assigned seed is base: shard 0 passes the base through unchanged —
// which pins Ensemble(K=1) bit-identical to the plain model under any
// caller-chosen seeds — and later shards decorrelate by a golden-ratio
// multiple, mirroring core's stream-derivation style.
//
// iam:detsource pure function of (base, si); no entropy source involved
func shardQuerySeed(base int64, si int) int64 {
	return base + int64(uint64(si)*0x9e3779b97f4a7c15)
}

// positionSeed replicates core's position-derived stream (splitmix64 of the
// model seed and the query's batch position) so the early-termination path
// can hand a shard the very seeds the shard's model would derive for itself
// on the exhaustive path — sub-batch compaction never shifts a query onto a
// different stream.
//
// iam:detsource splitmix64 finalizer: output is a pure function of (seed, qi)
func positionSeed(seed int64, qi int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(qi)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Estimate implements estimator.Estimator.
//
// iam:deterministic
func (e *Ensemble) Estimate(q *query.Query) (float64, error) {
	res, err := e.EstimateBatch([]*query.Query{q})
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// EstimateBatch implements estimator.BatchEstimator: every query is answered
// by the row-count-weighted merge of the per-shard estimates (exact in
// expectation, since selectivity is additive over the row partition), with
// variance-based early termination when Config.EarlyStopRelErr is set.
//
// iam:deterministic
func (e *Ensemble) EstimateBatch(qs []*query.Query) ([]float64, error) {
	return e.EstimateBatchSeeded(qs, nil)
}

// EstimateBatchSeeded is EstimateBatch with caller-chosen per-query sampling
// seeds (nil reproduces EstimateBatch). Shard s derives its stream for query
// i from qseeds[i] via shardQuerySeed, so estimates stay pure functions of
// (ensemble, query, seed) — independent of batch composition and of how many
// shards train or estimate concurrently.
//
// iam:deterministic
func (e *Ensemble) EstimateBatchSeeded(qs []*query.Query, qseeds []int64) ([]float64, error) {
	if qseeds != nil && len(qseeds) != len(qs) {
		return nil, fmt.Errorf("shard: %d seeds for %d queries", len(qseeds), len(qs))
	}
	st := e.st.Load()
	if e.cfg.EarlyStopRelErr > 0 && len(st.slots) > 1 {
		return e.estimateEarlyStop(st, qs, qseeds)
	}
	return e.estimateMerge(st, qs, qseeds)
}

// estimateMerge is the exhaustive path: every shard estimates every query in
// slot order, and out[i] accumulates weight·estimate. With one shard the
// weight is exactly 1.0 and the accumulator starts at +0.0, so the sums are
// bit-identical to the single model's answers.
func (e *Ensemble) estimateMerge(st *state, qs []*query.Query, qseeds []int64) ([]float64, error) {
	out := make([]float64, len(qs))
	if len(st.slots) == 1 && st.slots[0].table == e.table {
		// Degenerate ensemble: the slot views the parent table itself, so
		// queries pass through unrebound and shard 0's seed derivation is the
		// identity — the whole path below would only re-derive the same call.
		ests, err := e.estimateSlot(st.slots[0], qs, qseeds)
		if err != nil {
			return nil, err
		}
		copy(out, ests)
		e.visited.Add(uint64(len(qs)))
		return out, nil
	}
	ms := e.getScratch()
	defer e.putScratch(ms)
	ms.prep(len(qs))
	for _, slot := range st.slots {
		sub, seeds := ms.rebindAll(slot, qs, qseeds)
		ests, err := e.estimateSlot(slot, sub, seeds)
		if err != nil {
			return nil, err
		}
		for i, v := range ests {
			out[i] += slot.weight * v
		}
	}
	e.visited.Add(uint64(len(qs) * len(st.slots)))
	return out, nil
}

// rebindAll aims the scratch sub-batch at slot's sub-table: position i holds
// query i with Ranges shared and Table swapped, plus the shard-derived seed
// table (nil when the caller passed no seeds — each shard model then derives
// its own position seeds, decorrelated by its shard-indexed model seed).
func (ms *mergeScratch) rebindAll(slot *shardSlot, qs []*query.Query, qseeds []int64) ([]*query.Query, []int64) {
	si := slot.index
	for i, q := range qs {
		ms.qvals[i] = query.Query{Table: slot.table, Ranges: q.Ranges}
		ms.qptrs[i] = &ms.qvals[i]
		if qseeds != nil {
			ms.seeds[i] = shardQuerySeed(qseeds[i], si)
		}
	}
	if qseeds == nil {
		return ms.qptrs[:len(qs)], nil
	}
	return ms.qptrs[:len(qs)], ms.seeds[:len(qs)]
}

// estimateSlot runs one shard's batched estimate, degrading per shard to the
// guard-cascade fallback (when configured) if the model errors, and per
// query if the model returns a non-physical value — a stale or mid-swap
// shard degrades gracefully instead of failing the whole merge.
//
// iam:detsource the model path is a pure function of (model, qs, seeds); the guard fallback (whose deadline reads the clock) fires only after the model has already failed, i.e. outside the deterministic contract
func (e *Ensemble) estimateSlot(slot *shardSlot, qs []*query.Query, seeds []int64) ([]float64, error) {
	ests, err := slot.model.EstimateBatchSeeded(qs, seeds)
	if err != nil {
		if slot.fallback == nil {
			return nil, err
		}
		return slot.fallback.EstimateBatch(qs)
	}
	for i, v := range ests {
		if guard.Valid(v) {
			continue
		}
		if slot.fallback == nil {
			return nil, fmt.Errorf("shard: shard model returned invalid selectivity %v", v)
		}
		fixed, ferr := slot.fallback.Estimate(qs[i])
		if ferr != nil {
			return nil, ferr
		}
		ests[i] = fixed
	}
	return ests, nil
}

// estimateSlotVar is estimateSlot for the early-termination path: it also
// returns each query's progressive-sampling variance. Fallback answers are
// deterministic sample/histogram scans and report variance 0 — they tighten
// the interval rather than widening it, which only ever keeps *more* shards
// in the visit (the conservative direction).
//
// iam:detsource the model path is a pure function of (model, qs, seeds); the guard fallback (whose deadline reads the clock) fires only after the model has already failed, i.e. outside the deterministic contract
func (e *Ensemble) estimateSlotVar(slot *shardSlot, qs []*query.Query, seeds []int64, varOut []float64) ([]float64, error) {
	ests, vars, err := slot.model.EstimateBatchVarSeeded(qs, seeds)
	if err != nil {
		if slot.fallback == nil {
			return nil, err
		}
		fb, ferr := slot.fallback.EstimateBatch(qs)
		if ferr != nil {
			return nil, ferr
		}
		for i := range varOut[:len(qs)] {
			varOut[i] = 0
		}
		return fb, nil
	}
	copy(varOut, vars)
	for i, v := range ests {
		if guard.Valid(v) {
			continue
		}
		if slot.fallback == nil {
			return nil, fmt.Errorf("shard: shard model returned invalid selectivity %v", v)
		}
		fixed, ferr := slot.fallback.Estimate(qs[i])
		if ferr != nil {
			return nil, ferr
		}
		ests[i] = fixed
		varOut[i] = 0
	}
	return ests, nil
}

// estimateEarlyStop is the variance-based early-termination path (tentpole):
// shards are visited in descending row-weight order; each visit folds
// weight·estimate and weight²·variance into per-query accumulators; and once
// a query has visited at least MinShards shards, it drops out of the batch
// as soon as its z·stderr half-interval is within EarlyStopRelErr of its
// running estimate. The final answer normalizes by the visited weight mass:
//
//	sel ≈ (Σ_visited w_s·est_s) / (Σ_visited w_s)
//
// which extrapolates the visited shards to the skipped tail and reduces to
// the exact merge when nothing is skipped (up to the normalization division;
// use EarlyStopRelErr = 0 for bitwise-exhaustive answers). Every decision
// here is a pure function of (shard models, queries, seeds): the visit order
// is fixed by the weights, per-(query, shard) streams come from
// shardQuerySeed/positionSeed regardless of sub-batch composition, and the
// threshold comparison reads only deterministic estimates and variances.
//
// iam:deterministic
func (e *Ensemble) estimateEarlyStop(st *state, qs []*query.Query, qseeds []int64) ([]float64, error) {
	nq := len(qs)
	k := len(st.slots)
	out := make([]float64, nq)
	varBuf := make([]float64, nq)
	ms := e.getScratch()
	defer e.putScratch(ms)
	ms.prep(nq)

	active := ms.active[:0]
	for i := range qs {
		active = append(active, i)
	}
	relErr, z := e.cfg.EarlyStopRelErr, e.cfg.EarlyStopZ
	for round, si := range st.order {
		if len(active) == 0 {
			break
		}
		slot := st.slots[si]
		sub, seeds := ms.rebindActive(slot, qs, qseeds, active)
		ests, err := e.estimateSlotVar(slot, sub, seeds, varBuf)
		if err != nil {
			return nil, err
		}
		w := slot.weight
		for j, qi := range active {
			ms.acc[qi] += w * ests[j]
			ms.varAcc[qi] += w * w * varBuf[j]
			ms.wSum[qi] += w
		}
		e.visited.Add(uint64(len(active)))
		visited := round + 1
		if visited < e.cfg.MinShards || visited == k {
			continue
		}
		keep := active[:0]
		for _, qi := range active {
			mean := ms.acc[qi] / ms.wSum[qi]
			half := z * math.Sqrt(ms.varAcc[qi]) / ms.wSum[qi]
			if half > relErr*mean {
				keep = append(keep, qi)
			} else {
				e.skipped.Add(uint64(k - visited))
			}
		}
		active = keep
	}
	for i := range out {
		out[i] = vecmath.Clamp(ms.acc[i]/ms.wSum[i], 0, 1)
	}
	return out, nil
}

// rebindActive is rebindAll restricted to the still-active queries: sub-batch
// position j carries batch query active[j], with its stream seed derived
// from the query's *original* batch position (or caller seed), so shrinking
// the active set never moves a query onto a different stream.
func (ms *mergeScratch) rebindActive(slot *shardSlot, qs []*query.Query, qseeds []int64, active []int) ([]*query.Query, []int64) {
	si := slot.index
	for j, qi := range active {
		ms.qvals[j] = query.Query{Table: slot.table, Ranges: qs[qi].Ranges}
		ms.qptrs[j] = &ms.qvals[j]
		if qseeds != nil {
			ms.seeds[j] = shardQuerySeed(qseeds[qi], si)
		} else {
			ms.seeds[j] = positionSeed(slot.modelSeed, qi)
		}
	}
	return ms.qptrs[:len(active)], ms.seeds[:len(active)]
}
