// Package shard scales IAM horizontally: a relation is split into K
// contiguous row shards, one smaller IAM model is trained per shard (the
// shards train in parallel, coarse-grained — one goroutine per shard — on
// top of core's deterministic fine-grained pipeline), and queries are
// answered by estimating against every shard and combining the per-shard
// selectivities weighted by row count. Selectivity is additive over any row
// partition, so the merge is exact in expectation:
//
//	sel(q) = Σ_s (rows_s / rows_total) · sel_s(q)
//
// On top of the exact merge the ensemble offers variance-based early
// termination (Config.EarlyStopRelErr): shards are visited in descending
// row-weight order, each visit contributes its progressive-sampling variance
// to a running confidence interval, and the remaining shards are skipped for
// a query once its interval is tighter than the requested relative error.
// Early termination is off by default, in which case answers are bitwise
// identical to the plain merge — and an ensemble of one shard is bitwise
// identical to the plain core.Model path.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"iam/internal/core"
	"iam/internal/dataset"
	"iam/internal/guard"
	"iam/internal/pghist"
	"iam/internal/query"
	"iam/internal/sampling"
)

// Config controls ensemble construction. The embedded core.Config applies to
// every per-shard model; per-shard seeds are derived as Seed + shard index,
// so shard 0 trains exactly the model the plain path would.
type Config struct {
	core.Config

	// Shards is K, the number of row shards. 0 or 1 means a single shard
	// (the ensemble then degenerates to one plain model).
	Shards int
	// TrainParallel caps how many shards train concurrently, one goroutine
	// per shard. 0 or 1 trains the shards sequentially on the caller;
	// negative means GOMAXPROCS. Training is embarrassingly parallel across
	// shards — each shard's trajectory is a pure function of (its rows, its
	// seed) — so this knob never changes any trained parameter.
	TrainParallel int

	// EarlyStopRelErr enables variance-based early termination when > 0: a
	// query stops visiting shards once its running confidence half-interval
	// drops below EarlyStopRelErr times its running estimate. 0 (the
	// default) disables early termination, and answers are bitwise identical
	// to the exhaustive merge.
	EarlyStopRelErr float64
	// EarlyStopZ is the z-multiplier of the confidence half-interval
	// (default 2, ≈95% under a normal approximation).
	EarlyStopZ float64
	// MinShards is the minimum number of shards every query visits before
	// early termination may trigger (default 2, clamped to K).
	MinShards int

	// Fallback builds a per-shard guard cascade (uniform sample → histogram
	// over the shard's rows). When a shard's model errors or returns a
	// non-physical estimate — e.g. a stale model mid hot-swap — that shard's
	// contribution is answered by its fallback so the merge stays exact,
	// instead of failing the whole batch.
	Fallback bool
	// FallbackSamples is the per-shard uniform-sample size of the fallback
	// tier (default 2000, clamped to the shard's row count).
	FallbackSamples int
	// FallbackTimeout bounds each fallback tier call. Zero disables.
	FallbackTimeout time.Duration
}

func (c *Config) fillDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.EarlyStopZ <= 0 {
		c.EarlyStopZ = 2
	}
	if c.MinShards <= 0 {
		c.MinShards = 2
	}
	if c.MinShards > c.Shards {
		c.MinShards = c.Shards
	}
	if c.FallbackSamples <= 0 {
		c.FallbackSamples = 2000
	}
}

// shardSlot is one shard of an ensemble state: the sub-table view of the
// shard's rows, its trained model, its merge weight, and (optionally) its
// guard-cascade fallback. Slots are immutable after publication — a hot swap
// builds a new slot and a new state around it.
type shardSlot struct {
	index     int // shard position in the partition, fixed for the ensemble's life
	model     *core.Model
	modelSeed int64          // Config.Seed + index; derives nil-seed streams
	table     *dataset.Table // aliased sub-table (or the parent when K == 1)
	lo, hi    int            // parent row range [lo, hi)
	weight    float64        // (hi - lo) / parent rows
	fallback  *guard.Guarded // nil unless Config.Fallback
}

// state is one immutable generation of the ensemble: the slot list plus the
// weight-descending visit order the early-termination path walks. Published
// via Ensemble.state; never mutated after Store.
type state struct {
	slots []*shardSlot
	order []int // slot indices, descending weight, ties by ascending index
}

// Ensemble is a row-sharded IAM estimator. It implements
// estimator.Estimator, estimator.BatchEstimator and estimator.Sizer, and
// mirrors the core.Model serving surface (QuerySeed, EstimateBatchSeeded,
// SetStepFusion, ReleaseWorkers, Save) so the serving layer can install an
// ensemble wherever a single model fits.
type Ensemble struct {
	table *dataset.Table
	cfg   Config
	name  string

	// st is the current immutable state; estimates Load it once and work on
	// that snapshot, so a concurrent ReplaceShard never tears a batch.
	st atomic.Pointer[state]

	// fusion remembers the serving layer's step-fusion setting so a
	// hot-swapped shard model inherits it.
	fusion atomic.Bool

	// scratchMu guards the pool of merge scratches. It is a leaf lock: held
	// only inside getScratch/putScratch, never across a model call.
	scratchMu sync.Mutex
	scratches []*mergeScratch // iam:guardedby scratchMu

	// visited and skipped count (query, shard) pairs estimated vs. skipped
	// by early termination — the skipped-shard fraction benchmarks report.
	visited atomic.Uint64
	skipped atomic.Uint64
}

// Partition splits t into k contiguous sub-tables sharing t's column
// storage: shard s views rows [s·n/k, (s+1)·n/k), so the shards are disjoint
// and their union is exactly t — the invariant the exact merge rests on.
// k == 1 returns t itself, preserving query table identity for the
// degenerate ensemble.
func Partition(t *dataset.Table, k int) []*dataset.Table {
	if k <= 1 {
		return []*dataset.Table{t}
	}
	n := t.NumRows()
	parts := make([]*dataset.Table, k)
	for s := 0; s < k; s++ {
		lo, hi := s*n/k, (s+1)*n/k
		cols := make([]*dataset.Column, len(t.Columns))
		for ci, c := range t.Columns {
			sc := &dataset.Column{Name: c.Name, Kind: c.Kind, Card: c.Card, Labels: c.Labels}
			if c.Kind == dataset.Categorical {
				sc.Ints = c.Ints[lo:hi:hi]
			} else {
				sc.Floats = c.Floats[lo:hi:hi]
			}
			cols[ci] = sc
		}
		parts[s] = &dataset.Table{Name: t.Name, Columns: cols}
	}
	return parts
}

// Train fits one IAM model per shard and assembles the ensemble.
func Train(t *dataset.Table, cfg Config) (*Ensemble, error) {
	return TrainContext(context.Background(), t, cfg)
}

// TrainContext is Train with cancellation. Shards train concurrently up to
// cfg.TrainParallel goroutines; shard s trains on its sub-table with seed
// cfg.Seed + s through the unmodified core pipeline, so every shard's
// trajectory is bit-identical no matter how many shards train at once.
func TrainContext(ctx context.Context, t *dataset.Table, cfg Config) (*Ensemble, error) {
	cfg.fillDefaults()
	k := cfg.Shards
	if t.NumRows() < k {
		return nil, fmt.Errorf("shard: %d shards for %d rows", k, t.NumRows())
	}
	parts := Partition(t, k)

	models := make([]*core.Model, k)
	errs := make([]error, k)
	par := trainParallelism(cfg.TrainParallel, k)
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for si := range parts {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			models[si], errs[si] = core.TrainContext(ctx, parts[si], shardCoreConfig(cfg, si, k))
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: training shard %d/%d: %w", si, k, err)
		}
	}
	return assemble(t, cfg, parts, models)
}

// shardCoreConfig derives shard si's core configuration: the shared settings
// with the shard-indexed seed, a shard-suffixed checkpoint path, and — for
// k > 1 — OnEpoch cleared (the callback contract is single-model; shards
// training concurrently must not funnel into one callback).
func shardCoreConfig(cfg Config, si, k int) core.Config {
	cc := cfg.Config
	cc.Seed += int64(si)
	if k > 1 {
		cc.OnEpoch = nil
		if cc.CheckpointPath != "" {
			cc.CheckpointPath = fmt.Sprintf("%s.shard%d", cc.CheckpointPath, si)
		}
	}
	return cc
}

// trainParallelism resolves the TrainParallel knob against the shard count.
func trainParallelism(p, k int) int {
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	if p > k {
		p = k
	}
	return p
}

// assemble builds the Ensemble around trained per-shard models.
func assemble(t *dataset.Table, cfg Config, parts []*dataset.Table, models []*core.Model) (*Ensemble, error) {
	k := len(parts)
	e := &Ensemble{table: t, cfg: cfg, name: fmt.Sprintf("IAMx%d", k)}
	slots := make([]*shardSlot, k)
	n := t.NumRows()
	for si := range slots {
		lo, hi := si*n/k, (si+1)*n/k
		if k == 1 {
			lo, hi = 0, n
		}
		slot := &shardSlot{
			index:     si,
			model:     models[si],
			modelSeed: cfg.Seed + int64(si),
			table:     parts[si],
			lo:        lo,
			hi:        hi,
			weight:    float64(hi-lo) / float64(n),
		}
		if cfg.Fallback {
			fb, err := buildFallback(parts[si], cfg, si)
			if err != nil {
				return nil, err
			}
			slot.fallback = fb
		}
		slots[si] = slot
	}
	e.st.Store(&state{slots: slots, order: visitOrder(slots)})
	return e, nil
}

// buildFallback constructs shard si's guard cascade: a uniform sample of the
// shard's rows backed by a histogram over the same rows. Both tiers see only
// this shard, so a fallback answer weighs into the merge exactly like a
// model answer would.
func buildFallback(part *dataset.Table, cfg Config, si int) (*guard.Guarded, error) {
	size := cfg.FallbackSamples
	if size > part.NumRows() {
		size = part.NumRows()
	}
	samp, err := sampling.New(part, size, cfg.Seed+int64(si)+5)
	if err != nil {
		return nil, fmt.Errorf("shard: shard %d sampling fallback: %w", si, err)
	}
	hist, err := pghist.New(part, pghist.Config{})
	if err != nil {
		return nil, fmt.Errorf("shard: shard %d histogram fallback: %w", si, err)
	}
	return guard.New(guard.Config{Timeout: cfg.FallbackTimeout, Name: fmt.Sprintf("shard%d-fallback", si)}, samp, hist)
}

// visitOrder returns slot indices sorted by descending weight, ties broken
// by ascending index — a hand-rolled insertion sort so the order (and with
// it every early-termination decision) is a deterministic function of the
// weights alone, independent of sort-library internals.
func visitOrder(slots []*shardSlot) []int {
	order := make([]int, len(slots))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			//lint:ignore floateq weights of equal-sized shards are bit-identical divisions; the equality tie-break keeps the order total and deterministic
			swap := slots[a].weight < slots[b].weight || (slots[a].weight == slots[b].weight && a > b)
			if !swap {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	return order
}

// Name implements estimator.Estimator.
func (e *Ensemble) Name() string { return e.name }

// NumShards returns K.
func (e *Ensemble) NumShards() int { return len(e.st.Load().slots) }

// ShardTable returns the sub-table view shard si's model is bound to — the
// table a replacement model for si must be trained on.
func (e *Ensemble) ShardTable(si int) *dataset.Table {
	st := e.st.Load()
	if si < 0 || si >= len(st.slots) {
		return nil
	}
	return st.slots[si].table
}

// ReplaceShard hot-swaps shard si's model: a new immutable state with the
// new slot is published atomically, so concurrent estimates see either the
// old ensemble or the new one in full, never a mix within a single shard
// visit. The replacement must be bound to the shard's sub-table (trained on
// ShardTable(si)).
func (e *Ensemble) ReplaceShard(si int, m *core.Model) error {
	if m == nil {
		return fmt.Errorf("shard: nil replacement model for shard %d", si)
	}
	for {
		old := e.st.Load()
		if si < 0 || si >= len(old.slots) {
			return fmt.Errorf("shard: shard %d out of range [0,%d)", si, len(old.slots))
		}
		prev := old.slots[si]
		if m.Table() != prev.table {
			return fmt.Errorf("shard: replacement for shard %d is bound to a different table", si)
		}
		m.SetStepFusion(e.fusion.Load())
		slots := make([]*shardSlot, len(old.slots))
		copy(slots, old.slots)
		slots[si] = &shardSlot{
			index: prev.index, model: m, modelSeed: prev.modelSeed,
			table: prev.table, lo: prev.lo, hi: prev.hi,
			weight: prev.weight, fallback: prev.fallback,
		}
		next := &state{slots: slots, order: visitOrder(slots)}
		if e.st.CompareAndSwap(old, next) {
			prev.model.ReleaseWorkers()
			return nil
		}
	}
}

// ShardModel returns shard si's current model (nil when out of range).
func (e *Ensemble) ShardModel(si int) *core.Model {
	st := e.st.Load()
	if si < 0 || si >= len(st.slots) {
		return nil
	}
	return st.slots[si].model
}

// QuerySeed derives the content-hashed sampling seed the serving layer
// assigns to q — delegated to shard 0's model, whose seed is the ensemble's
// base seed, so a one-shard ensemble hands out exactly the seeds the plain
// model would.
func (e *Ensemble) QuerySeed(q *query.Query) int64 {
	return e.st.Load().slots[0].model.QuerySeed(q)
}

// SetStepFusion switches step fusion on every shard model (and records the
// setting for models installed later via ReplaceShard). Fusion only affects
// the exhaustive-merge path — the variance-carrying early-termination path
// bypasses it — and never changes answers either way.
func (e *Ensemble) SetStepFusion(on bool) {
	e.fusion.Store(on)
	for _, slot := range e.st.Load().slots {
		slot.model.SetStepFusion(on)
	}
}

// ReleaseWorkers drops every shard model's pooled sessions and scratch
// buffers (and this ensemble's merge scratches); everything is rebuilt
// lazily on the next estimate. The serving layer calls this when retiring an
// ensemble version.
func (e *Ensemble) ReleaseWorkers() {
	for _, slot := range e.st.Load().slots {
		slot.model.ReleaseWorkers()
	}
	e.scratchMu.Lock()
	e.scratches = nil
	e.scratchMu.Unlock()
}

// SizeBytes implements estimator.Sizer: the sum of the shard model sizes.
func (e *Ensemble) SizeBytes() int {
	s := 0
	for _, slot := range e.st.Load().slots {
		s += slot.model.SizeBytes()
	}
	return s
}

// EarlyStopStats reports the running (query, shard) visit and skip counters
// since construction (or the last ResetEarlyStopStats): visited counts
// shard estimates actually run, skipped counts shard visits saved by early
// termination. skipped/(visited+skipped) is the skipped-shard fraction.
func (e *Ensemble) EarlyStopStats() (visited, skipped uint64) {
	return e.visited.Load(), e.skipped.Load()
}

// ResetEarlyStopStats zeroes the visit/skip counters.
func (e *Ensemble) ResetEarlyStopStats() {
	e.visited.Store(0)
	e.skipped.Store(0)
}
