package shard

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"iam/internal/core"
	"iam/internal/dataset"
	"iam/internal/query"
	"iam/internal/testutil"
	"iam/internal/vecmath"
)

// testCfg keeps per-shard training cheap. GMMThreshold is lowered so the
// continuous columns stay GMM-reduced even on small shards (a shard sees
// only n/K rows, hence fewer distinct values than the full table).
func testCfg(k int) Config {
	cfg := Config{Shards: k}
	cfg.GMMThreshold = 50
	cfg.Components = 8
	cfg.Hidden = []int{16, 16}
	cfg.EmbedDim = 8
	cfg.Epochs = 2
	cfg.BatchSize = 128
	cfg.NumSamples = 128
	cfg.GMMSamples = 1000
	cfg.Seed = 7
	return cfg
}

func trainEnsemble(t *testing.T, tb *dataset.Table, cfg Config) *Ensemble {
	t.Helper()
	e, err := Train(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPartitionInvariant pins what the exact merge rests on: the shards are
// contiguous, disjoint, cover every row, alias the parent storage, and each
// one is a structurally valid table.
func TestPartitionInvariant(t *testing.T) {
	tb := dataset.SynthTWI(1001, 3)
	for _, k := range []int{1, 2, 3, 7} {
		parts := Partition(tb, k)
		if len(parts) != k {
			t.Fatalf("k=%d: got %d parts", k, len(parts))
		}
		total := 0
		for si, p := range parts {
			if err := p.Validate(); err != nil {
				t.Fatalf("k=%d shard %d: %v", k, si, err)
			}
			lo, hi := si*tb.NumRows()/k, (si+1)*tb.NumRows()/k
			if p.NumRows() != hi-lo {
				t.Fatalf("k=%d shard %d: %d rows, want %d", k, si, p.NumRows(), hi-lo)
			}
			// Aliasing, not copying: the shard's first row is the parent's
			// row lo in every column.
			for ci, c := range p.Columns {
				pc := tb.Columns[ci]
				if c.Kind == dataset.Continuous && &c.Floats[0] != &pc.Floats[lo] {
					t.Fatalf("k=%d shard %d col %d: floats not aliased", k, si, ci)
				}
			}
			total += p.NumRows()
		}
		if total != tb.NumRows() {
			t.Fatalf("k=%d: shards cover %d of %d rows", k, total, tb.NumRows())
		}
		if k == 1 && parts[0] != tb {
			t.Fatal("k=1 must return the parent table itself")
		}
	}
}

// TestMergeExactness is the satellite property test: the row-count-weighted
// sum of per-shard *true* selectivities equals the full-table truth, for
// every query and every shard count — selectivity is additive over a row
// partition, which is the whole reason the ensemble's merge is exact.
func TestMergeExactness(t *testing.T) {
	tb := dataset.SynthTWI(4000, 11)
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 40, Seed: 5})
	for _, k := range []int{2, 3, 5} {
		parts := Partition(tb, k)
		for qi, q := range w.Queries {
			var merged float64
			for _, p := range parts {
				sub := &query.Query{Table: p, Ranges: q.Ranges}
				merged += float64(p.NumRows()) / float64(tb.NumRows()) * query.Exec(sub)
			}
			if math.Abs(merged-w.TrueSel[qi]) > 1e-12 {
				t.Fatalf("k=%d query %d: merged truth %v != full truth %v", k, qi, merged, w.TrueSel[qi])
			}
		}
	}
}

// TestEnsembleK1BitIdentical pins the acceptance criterion: a one-shard
// ensemble answers bit-identically to the plain core.Model path, on both the
// position-seeded and the content-seeded (serving) entry points.
func TestEnsembleK1BitIdentical(t *testing.T) {
	tb := dataset.SynthTWI(2400, 11)
	cfg := testCfg(1)
	plain, err := core.Train(tb, cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	e := trainEnsemble(t, tb, cfg)
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 24, Seed: 9})

	want, err := plain.EstimateBatch(w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EstimateBatch(w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("query %d: ensemble %v != plain %v", i, got[i], want[i])
		}
	}

	seeds := make([]int64, len(w.Queries))
	for i, q := range w.Queries {
		if ps, es := plain.QuerySeed(q), e.QuerySeed(q); ps != es {
			t.Fatalf("query %d: ensemble seed %d != plain seed %d", i, es, ps)
		}
		seeds[i] = plain.QuerySeed(q)
	}
	want, err = plain.EstimateBatchSeeded(w.Queries, seeds)
	if err != nil {
		t.Fatal(err)
	}
	got, err = e.EstimateBatchSeeded(w.Queries, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("seeded query %d: ensemble %v != plain %v", i, got[i], want[i])
		}
	}
}

// TestTrainConcurrencyDeterminism is the satellite determinism test: the
// ensemble's estimates are bit-identical whether its shards trained one at a
// time, two at a time, or all K at once.
func TestTrainConcurrencyDeterminism(t *testing.T) {
	tb := dataset.SynthTWI(2400, 11)
	const k = 3
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 16, Seed: 13})
	var baseline []float64
	for _, par := range []int{1, 2, k} {
		cfg := testCfg(k)
		cfg.TrainParallel = par
		e := trainEnsemble(t, tb, cfg)
		got, err := e.EstimateBatch(w.Queries)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(baseline[i]) {
				t.Fatalf("TrainParallel=%d query %d: %v != baseline %v", par, i, got[i], baseline[i])
			}
		}
	}
}

// TestMergeMatchesManualWeightedSum pins the merge formula (and with it the
// EarlyStopRelErr=0 contract): the exhaustive ensemble answer is exactly
// Σ_s w_s·est_s computed by hand against each shard model, bit for bit.
func TestMergeMatchesManualWeightedSum(t *testing.T) {
	tb := dataset.SynthTWI(2400, 11)
	const k = 3
	e := trainEnsemble(t, tb, testCfg(k))
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 16, Seed: 17})

	got, err := e.EstimateBatch(w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(w.Queries))
	for si := 0; si < k; si++ {
		part := e.ShardTable(si)
		sub := make([]*query.Query, len(w.Queries))
		for i, q := range w.Queries {
			sub[i] = &query.Query{Table: part, Ranges: q.Ranges}
		}
		ests, err := e.ShardModel(si).EstimateBatchSeeded(sub, nil)
		if err != nil {
			t.Fatal(err)
		}
		weight := float64(part.NumRows()) / float64(tb.NumRows())
		for i, v := range ests {
			want[i] += weight * v
		}
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("query %d: ensemble %v != manual merge %v", i, got[i], want[i])
		}
	}
}

// TestEarlyStopDeterministicSkips exercises the tentpole's termination path:
// with a loose relative-error target some shard visits must actually be
// skipped, the answers must stay physical and close to the exhaustive merge,
// and both the answers and the skip counters must be bit-reproducible run
// over run — skip decisions are a pure function of (models, query, seed).
func TestEarlyStopDeterministicSkips(t *testing.T) {
	tb := dataset.SynthTWI(3200, 11)
	const k = 4
	cfg := testCfg(k)
	cfg.EarlyStopRelErr = 0.5
	cfg.MinShards = 2
	e := trainEnsemble(t, tb, cfg)
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 24, Seed: 19})

	first, err := e.EstimateBatch(w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	visited1, skipped1 := e.EarlyStopStats()
	if skipped1 == 0 {
		t.Fatal("loose EarlyStopRelErr skipped nothing — early termination never engaged")
	}
	if visited1 == 0 || visited1+skipped1 != uint64(k*len(w.Queries)) {
		t.Fatalf("visited %d + skipped %d != %d shard visits", visited1, skipped1, k*len(w.Queries))
	}

	e.ResetEarlyStopStats()
	second, err := e.EstimateBatch(w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	visited2, skipped2 := e.EarlyStopStats()
	if visited1 != visited2 || skipped1 != skipped2 {
		t.Fatalf("skip decisions changed across runs: %d/%d then %d/%d", visited1, skipped1, visited2, skipped2)
	}
	for i := range first {
		if math.Float64bits(first[i]) != math.Float64bits(second[i]) {
			t.Fatalf("query %d: early-stop answers differ across runs: %v vs %v", i, first[i], second[i])
		}
		if !(first[i] >= 0 && first[i] <= 1) {
			t.Fatalf("query %d: non-physical estimate %v", i, first[i])
		}
	}
}

// TestEarlyStopOffIsExhaustive pins the default-off contract from the other
// side: EarlyStopRelErr=0 routes through the exhaustive merge and never
// skips a shard.
func TestEarlyStopOffIsExhaustive(t *testing.T) {
	tb := dataset.SynthTWI(2400, 11)
	const k = 3
	e := trainEnsemble(t, tb, testCfg(k))
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 8, Seed: 23})
	if _, err := e.EstimateBatch(w.Queries); err != nil {
		t.Fatal(err)
	}
	visited, skipped := e.EarlyStopStats()
	if skipped != 0 {
		t.Fatalf("early stop off but %d shard visits skipped", skipped)
	}
	if visited != uint64(k*len(w.Queries)) {
		t.Fatalf("visited %d shard pairs, want %d", visited, k*len(w.Queries))
	}
}

// TestFallbackAnswersForBrokenShard wedges one shard with a model bound to
// the wrong table (every estimate against it errors — the stale-model
// failure a hot swap can race into) and checks the guard cascade silently
// answers that shard's contribution, while a fallback-less ensemble
// surfaces the error.
func TestFallbackAnswersForBrokenShard(t *testing.T) {
	tb := dataset.SynthTWI(2400, 11)
	const k = 3
	cfg := testCfg(k)
	cfg.Fallback = true
	cfg.FallbackSamples = 500
	e := trainEnsemble(t, tb, cfg)
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 8, Seed: 29})

	other := dataset.SynthTWI(600, 31)
	otherCfg := testCfg(1)
	wrong, err := core.Train(other, otherCfg.Config)
	if err != nil {
		t.Fatal(err)
	}

	// ReplaceShard must reject a model bound to a foreign table outright.
	if err := e.ReplaceShard(1, wrong); err == nil {
		t.Fatal("ReplaceShard accepted a model bound to a different table")
	}

	// Wedge slot 1 behind the public API's back to simulate the stale-model
	// window, then estimate: the cascade answers, every result physical.
	st := e.st.Load()
	slots := make([]*shardSlot, len(st.slots))
	copy(slots, st.slots)
	bad := *slots[1]
	bad.model = wrong
	slots[1] = &bad
	e.st.Store(&state{slots: slots, order: visitOrder(slots)})

	ests, err := e.EstimateBatch(w.Queries)
	if err != nil {
		t.Fatalf("fallback ensemble failed: %v", err)
	}
	for i, v := range ests {
		if !(v >= 0 && v <= 1) {
			t.Fatalf("query %d: non-physical fallback-merged estimate %v", i, v)
		}
	}

	// Same wedge without fallbacks: the error must surface, not be hidden.
	noFB := trainEnsemble(t, tb, testCfg(k))
	st = noFB.st.Load()
	slots = make([]*shardSlot, len(st.slots))
	copy(slots, st.slots)
	bad = *slots[1]
	bad.model = wrong
	slots[1] = &bad
	noFB.st.Store(&state{slots: slots, order: visitOrder(slots)})
	if _, err := noFB.EstimateBatch(w.Queries); err == nil {
		t.Fatal("fallback-less ensemble silently answered with a broken shard")
	}
}

// TestEnsembleSaveLoadRoundTrip pins persistence: a loaded ensemble answers
// bit-identically to the one that was saved, and the loader rejects tables
// whose partition no longer matches.
func TestEnsembleSaveLoadRoundTrip(t *testing.T) {
	tb := dataset.SynthTWI(2400, 11)
	const k = 3
	e := trainEnsemble(t, tb, testCfg(k))
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 12, Seed: 37})
	want, err := e.EstimateBatch(w.Queries)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !IsEnsemble(buf.Bytes()) {
		t.Fatal("saved ensemble lacks the magic prefix")
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), tb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.EstimateBatch(w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("query %d: loaded %v != saved %v", i, got[i], want[i])
		}
	}

	smaller := dataset.SynthTWI(2000, 11)
	if _, err := Load(bytes.NewReader(buf.Bytes()), smaller); err == nil {
		t.Fatal("Load accepted a table with a different partition")
	}
}

// TestShardedEstimateAllocBudget is the CI-gated allocation budget of the
// sharded serving path: a warm K-shard batched estimate must stay within
// K × the single-model budget (32 allocations per 32-query batch), on both
// the exhaustive and the early-termination paths.
func TestShardedEstimateAllocBudget(t *testing.T) {
	prev := vecmath.Parallelism(1)
	defer vecmath.Parallelism(prev)

	tb := dataset.SynthTWI(2400, 11)
	const k = 4
	cfg := testCfg(k)
	cfg.MassCacheSize = 256
	cfg.Workers = 1
	e := trainEnsemble(t, tb, cfg)
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 32, Seed: 43})
	const budget = k * 32

	if _, err := e.EstimateBatch(w.Queries); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := e.EstimateBatch(w.Queries); err != nil {
			t.Fatal(err)
		}
	})
	if n > budget {
		t.Fatalf("steady-state sharded EstimateBatch allocates %v per op, budget %d", n, budget)
	}

	es := trainEnsembleEarlyStop(t, tb, cfg)
	if _, err := es.EstimateBatch(w.Queries); err != nil {
		t.Fatal(err)
	}
	n = testing.AllocsPerRun(10, func() {
		if _, err := es.EstimateBatch(w.Queries); err != nil {
			t.Fatal(err)
		}
	})
	if n > budget {
		t.Fatalf("steady-state early-stop EstimateBatch allocates %v per op, budget %d", n, budget)
	}
}

func trainEnsembleEarlyStop(t *testing.T, tb *dataset.Table, cfg Config) *Ensemble {
	t.Helper()
	cfg.EarlyStopRelErr = 0.25
	return trainEnsemble(t, tb, cfg)
}

// TestEnsembleSwapRaceStress hammers the hot-swap path under the race
// detector: estimate batches stream against the ensemble while shard models
// are retrained and swapped in via ReplaceShard. Answers during the storm
// only need to be physical (the model set is changing under the batches);
// the point is that no read tears and no lock inverts.
func TestEnsembleSwapRaceStress(t *testing.T) {
	tb := dataset.SynthTWI(1600, 11)
	const k = 2
	cfg := testCfg(k)
	cfg.Fallback = true
	cfg.FallbackSamples = 400
	e := trainEnsemble(t, tb, cfg)
	w := testutil.Workload(t, tb, query.GenConfig{NumQueries: 8, Seed: 47})
	seeds := make([]int64, len(w.Queries))
	for i, q := range w.Queries {
		seeds[i] = e.QuerySeed(q)
	}

	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ests, err := e.EstimateBatchSeeded(w.Queries, seeds)
				if err != nil {
					errCh <- err
					return
				}
				for _, v := range ests {
					if !(v >= 0 && v <= 1) {
						errCh <- errNonPhysical{v}
						return
					}
				}
			}
		}()
	}

	swapCfg := testCfg(k)
	swapCfg.Epochs = 1
	for round := 0; round < 2; round++ {
		for si := 0; si < k; si++ {
			cc := swapCfg.Config
			cc.Seed = swapCfg.Seed + int64(si) + int64(100*(round+1))
			m, err := core.Train(e.ShardTable(si), cc)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.ReplaceShard(si, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

type errNonPhysical struct{ v float64 }

func (e errNonPhysical) Error() string { return "non-physical estimate during swap storm" }
