// Joins: multi-table cardinality estimation over the IMDB-like star schema
// (paper §6: Table 5 and Figure 5) — IAM's join estimator versus the
// Postgres-style baseline, and the downstream effect on join-order
// optimization.
//
//	go run ./examples/joins
package main

import (
	"fmt"
	"log"

	"iam/internal/dataset"
	"iam/internal/estimator"
	"iam/internal/join"
	"iam/internal/optimizer"
	"iam/internal/pghist"
	"iam/internal/query"
)

func main() {
	schema := join.NewIMDBSchema(dataset.SynthIMDB(800, 31))
	fmt.Printf("star schema: title=%d, movie_info=%d, cast_info=%d rows; |full outer join|=%.0f\n\n",
		schema.Root.NumRows(), schema.Children[0].Table.NumRows(),
		schema.Children[1].Table.NumRows(), schema.FullJoinSize())

	iamJoin, err := join.TrainIAMJoin(schema, join.ARJoinConfig{
		SampleRows: 12000, Epochs: 6, Hidden: []int{64, 32, 32, 64}, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	pgJoin, err := join.NewPGJoin(schema, pghist.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// A JOB-light-style join query: recent dramas with sensor info rows in
	// a value band, joined with their cast.
	rootQ := query.NewQuery(schema.Root)
	mustAdd(rootQ, query.Predicate{Col: "production_year", Op: query.Ge, Value: 50})
	miQ := query.NewQuery(schema.Children[0].Table)
	mustAdd(miQ, query.Predicate{Col: "x", Op: query.Le, Value: 1.0})
	jq := &join.JoinQuery{
		Root:     rootQ,
		Children: map[string]*query.Query{"movie_info": miQ},
	}
	truth, err := schema.ExactCard(jq)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range []join.CardEstimator{iamJoin, pgJoin} {
		est, err := e.EstimateCard(jq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s card estimate %8.0f (true %0.f, q-error %.2f)\n",
			e.Name(), est, truth, estimator.QError(truth, est, 1))
	}

	// Plug both estimators into the join-order optimizer and execute the
	// chosen plans for a workload — the Figure 5 experiment in miniature.
	w, err := schema.GenerateWorkload(join.GenJoinConfig{NumQueries: 40, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimizer end-to-end (40 join queries):")
	for _, e := range []join.CardEstimator{iamJoin, pgJoin, &optimizer.Oracle{Schema: schema}} {
		elapsed, inter, err := optimizer.RunWorkload(schema, e, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s exec=%.1fms intermediate-tuples=%.0f\n",
			e.Name(), float64(elapsed.Microseconds())/1000, inter)
	}
}

func mustAdd(q *query.Query, p query.Predicate) {
	if err := q.AddPredicate(p); err != nil {
		log.Fatal(err)
	}
}
