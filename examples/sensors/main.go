// Sensor analytics: a WISDM-like mixed categorical/continuous workload
// showing batch query inference (paper §5.3) and the approximate AVG/SUM
// aggregation extension (paper §8 future work).
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"time"

	"iam/internal/core"
	"iam/internal/dataset"
	"iam/internal/estimator"
	"iam/internal/query"
)

func main() {
	sensors := dataset.SynthWISDM(12000, 21)
	fmt.Printf("sensor dataset: %d rows, 2 categorical + 3 continuous columns\n",
		sensors.NumRows())

	model, err := core.Train(sensors, core.Config{
		Epochs: 6, Hidden: []int{64, 32, 32, 64}, Seed: 4, NumSamples: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AR columns after GMM reduction: %v\n\n", model.ARColumns())

	// A batch of monitoring queries: per-activity acceleration bands.
	workload, err := query.Generate(sensors, query.GenConfig{NumQueries: 64, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Single-query loop vs batched inference.
	start := time.Now()
	for _, q := range workload.Queries {
		if _, err := model.Estimate(q); err != nil {
			log.Fatal(err)
		}
	}
	single := time.Since(start)
	start = time.Now()
	batch, err := model.EstimateBatch(workload.Queries)
	if err != nil {
		log.Fatal(err)
	}
	batched := time.Since(start)
	fmt.Printf("64 queries: %.0fms one-by-one, %.0fms batched\n",
		float64(single.Microseconds())/1000, float64(batched.Microseconds())/1000)
	fmt.Println("(batching stacks all sample paths into one network forward per column;")
	fmt.Println(" it pays off with wide parallel hardware — the paper's Table 7 uses a GPU)")

	errs := make([]float64, len(batch))
	floor := 1.0 / float64(sensors.NumRows())
	for i, est := range batch {
		errs[i] = estimator.QError(workload.TrueSel[i], est, floor)
	}
	fmt.Printf("batched accuracy: %s\n\n", estimator.Summarize(errs))

	// Approximate aggregation (paper §8 future work): the y-axis mean for
	// readings whose x-axis sits in the upper range — a cross-column
	// conditional the AR model captures through component correlations.
	q, err := query.Parse(sensors, "x >= 2")
	if err != nil {
		log.Fatal(err)
	}
	avg, err := model.EstimateAvg(q, "y")
	if err != nil {
		log.Fatal(err)
	}
	sum, err := model.EstimateSum(q, "y")
	if err != nil {
		log.Fatal(err)
	}
	// Exact values by scan.
	var exactSum float64
	count := 0
	ycol := sensors.Column("y").Floats
	for i := 0; i < sensors.NumRows(); i++ {
		if q.Matches(i) {
			exactSum += ycol[i]
			count++
		}
	}
	fmt.Printf("AVG(y | x>=2): est %.3f, exact %.3f\n", avg, exactSum/float64(count))
	fmt.Printf("SUM(y | x>=2): est %.1f, exact %.1f\n", sum, exactSum)
}
