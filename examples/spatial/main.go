// Spatial analytics: the motivating workload of the paper — bounding-box
// selectivity over spatial data with huge continuous domains — comparing
// IAM against NeuroCard (the AR baseline it improves on) and Postgres-style
// per-column histograms.
//
//	go run ./examples/spatial
package main

import (
	"fmt"
	"log"

	"iam/internal/core"
	"iam/internal/dataset"
	"iam/internal/estimator"
	"iam/internal/naru"
	"iam/internal/pghist"
	"iam/internal/query"
)

func main() {
	tweets := dataset.SynthTWI(12000, 11)
	fmt.Printf("geo dataset: %d rows over a US-shaped bounding box\n\n", tweets.NumRows())

	iamModel, err := core.Train(tweets, core.Config{
		Epochs: 6, Hidden: []int{64, 32, 32, 64}, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	ncModel, err := naru.Train(tweets, naru.Config{
		Epochs: 6, Hidden: []int{64, 32, 32, 64}, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	pg, err := pghist.New(tweets, pghist.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model sizes: IAM %dKB vs NeuroCard %dKB (GMM reduction shrinks the net)\n\n",
		iamModel.SizeBytes()/1024, ncModel.SizeBytes()/1024)

	// Bounding boxes of decreasing size around a dense region.
	boxes := []string{
		"latitude >= 30 AND latitude <= 45 AND longitude >= -110 AND longitude <= -80",
		"latitude >= 38 AND latitude <= 42 AND longitude >= -95 AND longitude <= -85",
		"latitude >= 40 AND latitude <= 41 AND longitude >= -90 AND longitude <= -88",
	}
	floor := 1.0 / float64(tweets.NumRows())
	ests := []estimator.Estimator{iamModel, ncModel, pg}
	fmt.Printf("%-78s %10s", "bounding box", "actual")
	for _, e := range ests {
		fmt.Printf(" %12s", e.Name())
	}
	fmt.Println()
	for _, s := range boxes {
		q, err := query.Parse(tweets, s)
		if err != nil {
			log.Fatal(err)
		}
		act := query.Exec(q)
		fmt.Printf("%-78s %10.5f", s, act)
		for _, e := range ests {
			est, err := e.Estimate(q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %7.5f(%3.1fx)", est, estimator.QError(act, est, floor))
		}
		fmt.Println()
	}

	// Disjunctions via inclusion-exclusion (paper §2.1): east coast OR
	// west coast.
	west, _ := query.Parse(tweets, "longitude <= -115")
	east, _ := query.Parse(tweets, "longitude >= -75")
	est, err := estimator.EstimateDisjunction(iamModel, west, east)
	if err != nil {
		log.Fatal(err)
	}
	act, err := query.ExecDisjunction(west, east)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndisjunction (west coast OR east coast): est=%.4f act=%.4f\n", est, act)
}
