// Quickstart: train IAM on a spatial dataset and estimate selectivities.
//
//	go run ./examples/quickstart
//
// This is the minimal end-to-end path through the library: synthesise data,
// train the integrated GMM+autoregressive model, and compare its estimates
// against exact execution.
package main

import (
	"fmt"
	"log"

	"iam/internal/core"
	"iam/internal/dataset"
	"iam/internal/estimator"
	"iam/internal/query"
)

func main() {
	// 1. A TWI-like table of geo-tagged tweets: two continuous columns
	//    (latitude, longitude) with ~10^4 distinct values each.
	tweets := dataset.SynthTWI(10000, 7)
	fmt.Printf("dataset: %d rows, latitude distinct=%d\n",
		tweets.NumRows(), tweets.Column("latitude").DistinctCount())

	// 2. Train IAM. The continuous columns exceed the GMM threshold, so
	//    each is reduced to 30 mixture components and the AR model learns
	//    the joint distribution over component indices.
	model, err := core.Train(tweets, core.Config{
		Epochs: 6,
		Hidden: []int{64, 32, 32, 64},
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: AR columns reduced to %v (from ~10^4 values each), model %d KB\n",
		model.ARColumns(), model.SizeBytes()/1024)

	// 3. Estimate some range queries and compare with exact execution.
	queries := []string{
		"latitude <= 40",
		"latitude >= 35 AND latitude <= 45 AND longitude <= -90",
		"longitude >= -80",
	}
	floor := 1.0 / float64(tweets.NumRows())
	for _, s := range queries {
		q, err := query.Parse(tweets, s)
		if err != nil {
			log.Fatal(err)
		}
		est, err := model.Estimate(q)
		if err != nil {
			log.Fatal(err)
		}
		act := query.Exec(q)
		fmt.Printf("  %-60s est=%.4f act=%.4f q-error=%.2f\n",
			s, est, act, estimator.QError(act, est, floor))
	}
}
