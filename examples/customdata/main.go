// Custom data: bring-your-own-CSV workflow — export a table, re-import it
// with schema inference, train IAM, persist the model, and reload it for
// estimation. This is the full lifecycle a downstream user of the library
// walks through.
//
//	go run ./examples/customdata
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"iam/internal/atomicfile"
	"iam/internal/core"
	"iam/internal/dataset"
	"iam/internal/query"
)

func main() {
	dir, err := os.MkdirTemp("", "iam-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Pretend this CSV came from the user's pipeline.
	csvPath := filepath.Join(dir, "sensors.csv")
	src := dataset.SynthWISDM(6000, 99)
	// Atomic write: a crash mid-export can never leave a torn CSV behind.
	if err := atomicfile.WriteFile(csvPath, func(w io.Writer) error {
		return dataset.WriteCSV(src, w)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n", csvPath, src.NumRows())

	// 2. Import with schema inference: numeric columns with few distinct
	//    values become categorical, the rest stay continuous.
	f, err := os.Open(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	table, err := dataset.ReadCSV("sensors", f, dataset.CSVOptions{CategoricalMaxDistinct: 64})
	_ = f.Close() //lint:ignore errwrap read-only descriptor; nothing to lose
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range table.Columns {
		fmt.Printf("  inferred %-14s %-11s distinct=%d\n", c.Name, c.Kind, c.DistinctCount())
	}

	// 3. Train and persist.
	model, err := core.Train(table, core.Config{Epochs: 5, Hidden: []int{64, 32, 32, 64}, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	modelPath := filepath.Join(dir, "sensors.iam")
	// Atomic write: a crash mid-save can never leave a torn model file.
	if err := atomicfile.WriteFile(modelPath, model.Save); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(modelPath)
	fmt.Printf("saved model to %s (%d KB on disk)\n", modelPath, info.Size()/1024)

	// 4. Reload and estimate — e.g. inside a query optimizer process.
	mf, err := os.Open(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := core.Load(mf, table)
	_ = mf.Close() //lint:ignore errwrap read-only descriptor; nothing to lose
	if err != nil {
		log.Fatal(err)
	}
	q, err := query.Parse(table, "x >= 0 AND activity_code <= 5")
	if err != nil {
		log.Fatal(err)
	}
	est, err := loaded.Estimate(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sel(%s): est=%.4f actual=%.4f\n", q, est, query.Exec(q))
}
